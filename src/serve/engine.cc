#include "serve/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "graph/frontier.h"
#include "graph/io.h"
#include "graph/traversal.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace elitenet {
namespace serve {

using graph::DiGraph;
using graph::NodeId;

namespace {

void AppendU64(std::string* out, uint64_t v) { *out += std::to_string(v); }

void AppendI64(std::string* out, int64_t v) { *out += std::to_string(v); }

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

// Adjacency adapters so the bounded search runs over either a static
// DiGraph or a live MVCC snapshot. Both iterate neighbors in ascending
// id order, so the expansion order — and therefore the bytes of a
// completed answer — is identical across the two backings.
struct GraphAdj {
  const DiGraph* g;
  template <typename Fn>
  void ForEachOut(NodeId u, Fn&& fn) const {
    for (NodeId v : g->OutNeighbors(u)) fn(v);
  }
  template <typename Fn>
  void ForEachIn(NodeId u, Fn&& fn) const {
    for (NodeId v : g->InNeighbors(u)) fn(v);
  }
};

struct SnapAdj {
  const LiveSnapshot* s;
  template <typename Fn>
  void ForEachOut(NodeId u, Fn&& fn) const {
    s->ForEachOut(u, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void ForEachIn(NodeId u, Fn&& fn) const {
    s->ForEachIn(u, std::forward<Fn>(fn));
  }
};

// Deadline-aware bounded bidirectional search. Identical expansion order
// to analysis::BidirectionalDistance (advance the smaller frontier, finish
// the level, take the best meeting) with one deadline poll per level, so a
// query that finishes in time returns exactly the bytes the analysis
// kernel would.
struct BoundedDistanceResult {
  uint32_t distance = UINT32_MAX;
  /// Proven minimum for the true distance: completed levels with no
  /// meeting push it up; UINT32_MAX once unreachability is proven.
  uint32_t lower_bound = 0;
  uint64_t expanded = 0;
  /// False when the deadline expired first (distance is then unknown).
  bool completed = true;
};

template <typename Adj>
BoundedDistanceResult BoundedBidirectionalDistance(
    const Adj& g, NodeId source, NodeId target,
    const util::Deadline& deadline, graph::ScratchArena* fwd,
    graph::ScratchArena* bwd) {
  BoundedDistanceResult out;
  if (source == target) {
    out.distance = 0;
    return out;
  }
  out.lower_bound = 1;

  constexpr uint32_t kUnset = UINT32_MAX;
  fwd->BeginEpoch();
  bwd->BeginEpoch();
  std::vector<NodeId>& fwd_frontier = fwd->frontier();
  std::vector<NodeId>& bwd_frontier = bwd->frontier();
  fwd_frontier.assign(1, source);
  bwd_frontier.assign(1, target);
  fwd->Visit(source, 0, graph::kNoParent);
  bwd->Visit(target, 0, graph::kNoParent);
  uint32_t fwd_depth = 0, bwd_depth = 0;

  while (!fwd_frontier.empty() && !bwd_frontier.empty()) {
    if (deadline.Expired()) {
      out.completed = false;
      return out;
    }
    const bool advance_forward = fwd_frontier.size() <= bwd_frontier.size();
    uint32_t best = kUnset;
    if (advance_forward) {
      std::vector<NodeId>& next = fwd->next();
      next.clear();
      ++fwd_depth;
      for (NodeId u : fwd_frontier) {
        ++out.expanded;
        g.ForEachOut(u, [&](NodeId v) {
          if (fwd->Visited(v)) return;
          fwd->Visit(v, fwd_depth, u);
          if (bwd->Visited(v)) {
            best = std::min(best, fwd_depth + bwd->Distance(v));
          }
          next.push_back(v);
        });
      }
      fwd_frontier.swap(next);
    } else {
      std::vector<NodeId>& next = bwd->next();
      next.clear();
      ++bwd_depth;
      for (NodeId u : bwd_frontier) {
        ++out.expanded;
        g.ForEachIn(u, [&](NodeId v) {
          if (bwd->Visited(v)) return;
          bwd->Visit(v, bwd_depth, u);
          if (fwd->Visited(v)) {
            best = std::min(best, bwd_depth + fwd->Distance(v));
          }
          next.push_back(v);
        });
      }
      bwd_frontier.swap(next);
    }
    if (best != kUnset) {
      out.distance = best;
      out.lower_bound = best;
      return out;
    }
    // Both levels complete with no meeting: any s->t path is longer than
    // everything explored from either side.
    out.lower_bound = fwd_depth + bwd_depth + 1;
  }
  out.lower_bound = kUnset;  // exhausted a side: provably unreachable
  return out;
}

// The full warm-index build as a pure function of (graph, options) — the
// Create() path runs it over the loaded base, and a live engine's
// compactor runs the very same code over each freshly compacted base, so
// a post-compaction engine serves exactly what a cold start from the
// compacted file would.
Status ComputeWarmIndexes(const DiGraph& g, const EngineOptions& options,
                          WarmIndexes* warm) {
  {
    ELITENET_SPAN("serve.warm.degree");
    warm->degree_stats = analysis::ComputeDegreeStats(g);
    warm->reciprocity = analysis::ComputeReciprocity(g);
    warm->mutual_degree.assign(g.num_nodes(), 0);
    util::ParallelFor(0, g.num_nodes(), 0, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const NodeId u = static_cast<NodeId>(i);
        uint32_t mutual = 0;
        for (NodeId v : g.OutNeighbors(u)) {
          if (g.HasEdge(v, u)) ++mutual;
        }
        warm->mutual_degree[i] = mutual;
      }
    });
  }
  {
    ELITENET_SPAN("serve.warm.components");
    warm->wcc = analysis::WeaklyConnectedComponents(g);
    warm->scc = analysis::StronglyConnectedComponents(g);
  }
  {
    ELITENET_SPAN("serve.warm.pagerank");
    auto pr = analysis::PageRank(g, options.pagerank);
    if (!pr.ok()) return pr.status();
    warm->pagerank = std::move(pr->scores);
    warm->rank_order = analysis::TopKByScore(warm->pagerank, g.num_nodes());
    warm->rank_of.assign(g.num_nodes(), 0);
    for (size_t i = 0; i < warm->rank_order.size(); ++i) {
      warm->rank_of[warm->rank_order[i]] = static_cast<uint32_t>(i + 1);
    }
  }
  if (options.distance_oracle) {
    // May return an unbuilt (empty) labeling when the pruned-label budget
    // is exceeded; dist then serves via the BFS fallback. Either outcome
    // is persisted as-is, so a restored engine behaves identically.
    ELITENET_SPAN("serve.warm.dist_oracle");
    warm->hub_labels = graph::BuildHubLabels(g);
  }
  {
    ELITENET_SPAN("serve.warm.fingerprint");
    auto fp = core::ComputeFingerprint(g, options.fingerprint);
    if (fp.ok()) {
      warm->fingerprint = *fp;
      warm->fingerprint_similarity =
          core::FingerprintSimilarity(*fp, core::PaperFingerprint());
      warm->fingerprint_ok = true;
    } else {
      warm->fingerprint_error = fp.status().ToString();
    }
  }
  return Status::OK();
}

}  // namespace

struct QueryEngine::Scratch {
  explicit Scratch(NodeId n) : fwd(n), bwd(n) {}
  graph::ScratchArena fwd;
  graph::ScratchArena bwd;
};

struct QueryEngine::Impl {
  struct Job {
    Request req;
    util::Deadline deadline;
    std::promise<QueryResponse> promise;
    uint64_t seq = 0;  ///< Telemetry sequence, assigned at submission.
    std::chrono::steady_clock::time_point submitted;
    /// Live engines: MVCC snapshot captured at submission (see
    /// RequestMeta::snap_resolved).
    bool snap_resolved = false;
    Status snap_status;
    LiveSnapshot snap;
  };

  std::unique_ptr<util::ShardedLruCache<std::string, std::string>> cache;

  std::mutex scratch_mutex;
  std::vector<std::unique_ptr<Scratch>> scratch_pool;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  bool shutdown = false;
  std::vector<std::thread> workers;
  std::atomic<int64_t> inflight{0};
};

QueryEngine::QueryEngine(DiGraph g, const EngineOptions& options)
    : graph_(std::move(g)),
      options_(options),
      impl_(new Impl),
      telemetry_(new Telemetry(options.telemetry)) {
  if (options_.cache_capacity > 0) {
    impl_->cache =
        std::make_unique<util::ShardedLruCache<std::string, std::string>>(
            options_.cache_capacity, std::max<size_t>(1, options_.cache_shards));
  }
}

QueryEngine::~QueryEngine() {
  // Stop the compactor first: it calls back into CompactNow, which needs
  // live_ and the telemetry counters intact.
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(compactor_mutex_);
      compactor_stop_ = true;
    }
    compactor_cv_.notify_all();
    compactor_.join();
  }
  // Stop the exporter next: its final snapshot must run while the
  // engine (cache counters, inflight gauge) is still alive.
  exporter_.reset();
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->shutdown = true;
  }
  impl_->queue_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    DiGraph g, const EngineOptions& options) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot serve an empty graph");
  }
  std::unique_ptr<QueryEngine> engine(
      new QueryEngine(std::move(g), options));
  EN_RETURN_IF_ERROR(engine->Warmup());
  engine->StartWorkers();
  if (!options.metrics_path.empty()) {
    // Exposition implies recording: flip the util metrics switch so the
    // macro-based counters/sketches the snapshots embed are live.
    util::SetMetricsEnabled(true);
    QueryEngine* raw = engine.get();
    engine->exporter_ = std::make_unique<TelemetryExporter>(
        engine->telemetry_.get(), options.metrics_path,
        options.metrics_interval_ms,
        [raw] { return raw->StatsContext(); });
  }
  return engine;
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::CreateLive(
    DiGraph g, const LiveEngineOptions& live, const EngineOptions& options) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot serve an empty graph");
  }
  std::unique_ptr<QueryEngine> engine(new QueryEngine(std::move(g), options));
  EN_RETURN_IF_ERROR(engine->Warmup());
  // The warm bundle moves into the epoch payload: requests reach it
  // through their admission snapshot, so a compaction can publish a fresh
  // bundle together with its base while in-flight requests keep reading
  // the one their epoch owns.
  auto payload = std::make_shared<const WarmIndexes>(std::move(engine->warm_));
  engine->warm_ = WarmIndexes();
  LiveGraphOptions lopt;
  lopt.log_path = live.log_path;
  lopt.sync_log = live.sync_log;
  lopt.compact_stream = live.compact_stream;
  // DiGraph copies share storage, so the overlay's base is the same CSR
  // the engine's graph() exposes — no second copy of the graph.
  auto lg = LiveGraph::Create(engine->graph_, lopt,
                              std::shared_ptr<const void>(payload));
  if (!lg.ok()) return lg.status();
  engine->live_ = std::move(*lg);
  engine->live_options_ = live;
  engine->StartWorkers();
  if (!options.metrics_path.empty()) {
    util::SetMetricsEnabled(true);
    QueryEngine* raw = engine.get();
    engine->exporter_ = std::make_unique<TelemetryExporter>(
        engine->telemetry_.get(), options.metrics_path,
        options.metrics_interval_ms, [raw] { return raw->StatsContext(); });
  }
  if (live.compact_after > 0 && !live.compact_path.empty()) {
    QueryEngine* raw = engine.get();
    engine->compactor_ = std::thread([raw] { raw->CompactorLoop(); });
  }
  return engine;
}

Status QueryEngine::Warmup() {
  util::SpanTimer timer("serve.warmup");
  WarmIndexKey key;
  if (!options_.warm_index_path.empty()) {
    key.graph_checksum = graph::GraphChecksum(graph_);
    key.config_hash = WarmConfigHash(options_.pagerank, options_.fingerprint,
                                     options_.distance_oracle);
    ELITENET_SPAN("serve.warm.widx_load");
    auto restored =
        LoadWarmIndexes(options_.warm_index_path, key, graph_.num_nodes());
    if (restored.ok()) {
      ELITENET_COUNT("serve.widx.hit", 1);
      warm_ = std::move(*restored);
      warm_from_cache_ = true;
      warmup_seconds_ = timer.Seconds();
      return Status::OK();
    }
    ELITENET_COUNT("serve.widx.miss", 1);
  }
  EN_RETURN_IF_ERROR(BuildWarmIndexes());
  if (!options_.warm_index_path.empty()) {
    // Best-effort: a read-only filesystem must not fail engine startup.
    ELITENET_SPAN("serve.warm.widx_write");
    if (SaveWarmIndexes(options_.warm_index_path, key, warm_).ok()) {
      ELITENET_COUNT("serve.widx.write", 1);
    }
  }
  warmup_seconds_ = timer.Seconds();
  return Status::OK();
}

Status QueryEngine::BuildWarmIndexes() {
  return ComputeWarmIndexes(graph_, options_, &warm_);
}

void QueryEngine::StartWorkers() {
  const int n = std::max(1, options_.threads);
  impl_->workers.reserve(n);
  for (int i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { WorkerLoop(); });
  }
}

void QueryEngine::WorkerLoop() {
  for (;;) {
    Impl::Job job;
    {
      std::unique_lock<std::mutex> lock(impl_->queue_mutex);
      impl_->queue_cv.wait(lock, [this] {
        return impl_->shutdown || !impl_->queue.empty();
      });
      if (impl_->queue.empty()) return;  // shutdown with nothing pending
      job = std::move(impl_->queue.front());
      impl_->queue.pop_front();
      // Drain-side depth sample: together with the submission-side one,
      // the queue_depth distribution sees both the arrival and the
      // departure view of the backlog.
      ELITENET_HISTOGRAM("serve.queue_depth", impl_->queue.size());
    }
    RequestMeta meta;
    meta.seq = job.seq;
    meta.queued = true;
    meta.snap_resolved = job.snap_resolved;
    meta.snap_status = std::move(job.snap_status);
    meta.snap = std::move(job.snap);
    meta.queue_wait_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - job.submitted)
            .count());
    ELITENET_SKETCH("serve.queue.wait_us", meta.queue_wait_us);
    job.promise.set_value(ExecuteWithDeadline(job.req, job.deadline, meta));
  }
}

std::future<QueryResponse> QueryEngine::Submit(const Request& r) {
  Impl::Job job;
  job.req = r;
  job.deadline = r.deadline_us > 0 ? util::Deadline::After(r.deadline_us)
                                   : util::Deadline::Infinite();
  // Sequence numbers are claimed at submission (not execution) so a
  // replayed request stream maps to the same trace ids no matter how the
  // workers interleave.
  if (telemetry_->enabled()) job.seq = telemetry_->NextSeq();
  if (live_ != nullptr) {
    // Admission-time capture: the version a queued request answers at is
    // fixed here, before any queueing delay — so a request admitted at
    // version V answers at V no matter how long it waits or how many
    // mutations land meanwhile.
    job.snap_resolved = true;
    auto snap = ResolveSnapshot(r);
    if (snap.ok()) {
      job.snap = std::move(*snap);
    } else {
      job.snap_status = snap.status();
    }
  }
  job.submitted = std::chrono::steady_clock::now();
  std::future<QueryResponse> fut = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    ELITENET_HISTOGRAM("serve.queue_depth", impl_->queue.size());
    impl_->queue.push_back(std::move(job));
  }
  impl_->queue_cv.notify_one();
  return fut;
}

QueryResponse QueryEngine::Execute(const Request& r) {
  return ExecuteWithDeadline(r,
                             r.deadline_us > 0
                                 ? util::Deadline::After(r.deadline_us)
                                 : util::Deadline::Infinite(),
                             RequestMeta());
}

QueryResponse QueryEngine::ExecuteLine(std::string_view line) {
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    ELITENET_COUNT("serve.requests", 1);
    ELITENET_COUNT("serve.errors", 1);
    QueryResponse resp;
    resp.ok = false;
    resp.json = "{\"type\":\"error\",\"code\":\"";
    resp.json += StatusCodeToString(parsed.status().code());
    resp.json += "\",\"message\":\"";
    resp.json += JsonEscape(parsed.status().message());
    resp.json += "\",\"request\":\"";
    resp.json += JsonEscape(util::StripAsciiWhitespace(line));
    resp.json += "\"}";
    return resp;
  }
  return Execute(*parsed);
}

namespace {

const char* SpanNameFor(RequestType type) {
  switch (type) {
    case RequestType::kEgoSummary:
      return "serve.ego";
    case RequestType::kTopKRank:
      return "serve.topk";
    case RequestType::kDistance:
      return "serve.dist";
    case RequestType::kNeighbors:
      return "serve.neighbors";
    case RequestType::kFingerprint:
      return "serve.fingerprint";
  }
  return "serve.unknown";
}

// Distinct macro call sites per type: the metrics macros cache their
// metric pointer per call site, so one shared site with a runtime name
// would bind every type to the first sketch it saw. Sketches (not the
// power-of-two histograms) so the exported snapshots carry live
// p50/p95/p99 per type at O(1) memory.
void RecordLatency(RequestType type, uint64_t micros) {
  switch (type) {
    case RequestType::kEgoSummary:
      ELITENET_SKETCH("serve.latency_us.ego", micros);
      break;
    case RequestType::kTopKRank:
      ELITENET_SKETCH("serve.latency_us.topk", micros);
      break;
    case RequestType::kDistance:
      ELITENET_SKETCH("serve.latency_us.dist", micros);
      break;
    case RequestType::kNeighbors:
      ELITENET_SKETCH("serve.latency_us.neighbors", micros);
      break;
    case RequestType::kFingerprint:
      ELITENET_SKETCH("serve.latency_us.fingerprint", micros);
      break;
  }
}

// Live result-cache key: the epoch disambiguates bases (the same version
// number can name different logical states across compaction lineages of
// different WALs), the resolved version makes unpinned requests cacheable
// — two unpinned requests admitted at the same version share an entry.
std::string LiveCacheKey(const LiveSnapshot& snap, const Request& r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "e%" PRIu64 "@%" PRIu64 " ",
                snap.epoch_seq(), snap.version());
  return buf + CacheKey(r);
}

QueryResponse ErrorResponse(const Request& r, const Status& status) {
  ELITENET_COUNT("serve.errors", 1);
  QueryResponse resp;
  resp.ok = false;
  resp.json = "{\"type\":\"error\",\"code\":\"";
  resp.json += StatusCodeToString(status.code());
  resp.json += "\",\"message\":\"";
  resp.json += JsonEscape(status.message());
  resp.json += "\",\"request\":\"";
  resp.json += JsonEscape(CanonicalEncoding(r));
  resp.json += "\"}";
  return resp;
}

}  // namespace

QueryResponse QueryEngine::ExecuteWithDeadline(const Request& r,
                                               const util::Deadline& deadline,
                                               const RequestMeta& meta) {
  ELITENET_COUNT("serve.requests", 1);
  Telemetry* tel =
      telemetry_->enabled() ? telemetry_.get() : nullptr;
  uint64_t seq = 0;
  uint64_t trace_id = 0;
  bool sampled = false;
  if (tel != nullptr) {
    // Synchronous Execute() claims its sequence here; Submit() claimed it
    // at enqueue time so trace ids follow submission order.
    seq = meta.seq != 0 ? meta.seq : tel->NextSeq();
    trace_id = TraceIdFor(seq);
    sampled = tel->Sampled(trace_id);
  }
  // Sampled requests capture their span tree via the thread-local sink;
  // unsampled ones pay only the null-pointer check inside each span.
  std::optional<util::SpanCapture> capture;
  if (sampled) capture.emplace();

  const int64_t inflight =
      impl_->inflight.fetch_add(1, std::memory_order_relaxed) + 1;
  ELITENET_GAUGE_SET("serve.inflight", inflight);
  util::SpanTimer timer;

  QueryResponse resp;
  {
    util::ScopedSpan span(SpanNameFor(r.type));
    // Admission: live engines fix the MVCC snapshot (Submit resolved it
    // already; synchronous Execute resolves here); static engines reject
    // version pins — there is no version history to pin into.
    Status admit;
    LiveSnapshot snap;
    if (live_ != nullptr) {
      if (meta.snap_resolved) {
        admit = meta.snap_status;
        if (admit.ok()) snap = meta.snap;
      } else {
        auto got = ResolveSnapshot(r);
        if (got.ok()) {
          snap = std::move(*got);
        } else {
          admit = got.status();
        }
      }
    } else if (r.version != 0) {
      admit = Status::FailedPrecondition(
          "version pins require a live engine (static graph has no "
          "version history)");
    }
    if (!admit.ok()) {
      resp = ErrorResponse(r, admit);
    } else {
      QueryCtx ctx;
      if (live_ != nullptr) {
        ctx.snap = &snap;
        ctx.warm = static_cast<const WarmIndexes*>(snap.warm_payload());
      } else {
        ctx.warm = &warm_;
      }
      std::string key;
      bool from_cache = false;
      if (impl_->cache != nullptr) {
        key = live_ != nullptr ? LiveCacheKey(snap, r) : CacheKey(r);
        std::string cached;
        if (impl_->cache->Get(key, &cached)) {
          ELITENET_COUNT("serve.cache.hit", 1);
          resp.json = std::move(cached);
          resp.cache_hit = true;
          from_cache = true;
        } else {
          ELITENET_COUNT("serve.cache.miss", 1);
        }
      }
      if (!from_cache) {
        resp = Compute(r, deadline, ctx);
        if (resp.ok && !resp.degraded && impl_->cache != nullptr) {
          impl_->cache->Put(key, resp.json);
        }
      }
    }
  }  // root span closes here so a sampled capture sees its duration

  const uint64_t latency_us = static_cast<uint64_t>(timer.Seconds() * 1e6);
  RecordLatency(r.type, latency_us);
  // Keep the fetch_sub outside the macro: ELITENET_GAUGE_SET skips its
  // value argument when metrics are disabled, and the matching fetch_add
  // above runs unconditionally.
  const int64_t now_inflight =
      impl_->inflight.fetch_sub(1, std::memory_order_relaxed) - 1;
  ELITENET_GAUGE_SET("serve.inflight", now_inflight);
  if (tel != nullptr) {
    RequestRecord record;
    record.trace_id = trace_id;
    record.seq = seq;
    record.request = r;
    record.ok = resp.ok;
    record.degraded = resp.degraded;
    record.cache_hit = resp.cache_hit;
    record.sampled = sampled;
    record.queued = meta.queued;
    record.queue_wait_us = meta.queue_wait_us;
    record.latency_us = latency_us;
    record.deadline_slack_us = deadline.RemainingMicros();
    record.deadline_missed =
        !deadline.infinite() && record.deadline_slack_us == 0;
    record.oracle_fallback = r.type == RequestType::kDistance &&
                             !resp.cache_hit && !distance_oracle_active();
    if (capture.has_value()) {
      record.spans = capture->Take();
      record.spans_truncated = capture->truncated();
    }
    tel->Record(std::move(record));
  }
  return resp;
}

QueryResponse QueryEngine::Compute(const Request& r,
                                   const util::Deadline& deadline,
                                   const QueryCtx& ctx) {
  ELITENET_SPAN("serve.compute");
  switch (r.type) {
    case RequestType::kEgoSummary:
      return DoEgoSummary(r, ctx);
    case RequestType::kTopKRank:
      return DoTopKRank(r, ctx);
    case RequestType::kDistance:
      return DoDistance(r, deadline, ctx);
    case RequestType::kNeighbors:
      return DoNeighbors(r, ctx);
    case RequestType::kFingerprint:
      return DoFingerprint(ctx);
  }
  return ErrorResponse(r, Status::Internal("unhandled request type"));
}

namespace {

// Live responses carry the snapshot version they answered at and the
// base version the epoch's warm indexes were computed at — the staleness
// bound for warm-index fields. Static responses stay byte-for-byte what
// they were before live mode existed.
void AppendVersionFields(std::string* j, const LiveSnapshot* snap) {
  if (snap == nullptr) return;
  *j += ",\"version\":";
  AppendU64(j, snap->version());
  *j += ",\"as_of\":";
  AppendU64(j, snap->base_version());
}

}  // namespace

QueryResponse QueryEngine::DoEgoSummary(const Request& r, const QueryCtx& ctx) {
  const NodeId u = r.node;
  if (u >= graph_.num_nodes()) {
    return ErrorResponse(
        r, Status::NotFound("node " + std::to_string(u) + " not in graph"));
  }
  const WarmIndexes& warm = *ctx.warm;
  const LiveSnapshot* snap = ctx.snap;
  // Two-hop out-reach (distinct nodes within <= 2 follows, excluding u):
  // the per-user audience estimate verification-style lookups want. Marked
  // in a pooled arena so hub queries do not allocate O(n) scratch. Live
  // engines traverse the snapshot — exact at the request's version even
  // when only a neighbor-of-a-neighbor was touched.
  std::unique_ptr<Scratch> scratch = BorrowScratch();
  graph::ScratchArena& a = scratch->fwd;
  a.BeginEpoch();
  a.Visit(u, 0, graph::kNoParent);
  uint64_t reach = 0;
  uint32_t out_deg = 0;
  uint32_t in_deg = 0;
  uint64_t mutual = 0;
  if (snap != nullptr) {
    std::vector<NodeId> first;
    snap->CollectOut(u, &first);
    for (NodeId v : first) {
      if (!a.Visited(v)) {
        a.Visit(v, 1, u);
        ++reach;
      }
    }
    for (NodeId v : first) {
      snap->ForEachOut(v, [&](NodeId w) {
        if (!a.Visited(w)) {
          a.Visit(w, 2, v);
          ++reach;
        }
      });
    }
    out_deg = static_cast<uint32_t>(first.size());
    in_deg = snap->InDegree(u);
    if (snap->Touched(u)) {
      // Either direction at u changed: the warm count may be stale, so
      // recount at the snapshot version (deg(u) containment probes).
      for (NodeId v : first) {
        if (snap->HasEdge(v, u)) ++mutual;
      }
    } else {
      // Untouched in both directions at this version: neither u's
      // follows nor its followers changed, so the warm count is exact.
      mutual = warm.mutual_degree[u];
    }
  } else {
    for (NodeId v : graph_.OutNeighbors(u)) {
      if (!a.Visited(v)) {
        a.Visit(v, 1, u);
        ++reach;
      }
    }
    for (NodeId v : graph_.OutNeighbors(u)) {
      for (NodeId w : graph_.OutNeighbors(v)) {
        if (!a.Visited(w)) {
          a.Visit(w, 2, v);
          ++reach;
        }
      }
    }
    out_deg = graph_.OutDegree(u);
    in_deg = graph_.InDegree(u);
    mutual = warm.mutual_degree[u];
  }
  ReturnScratch(std::move(scratch));

  QueryResponse resp;
  std::string& j = resp.json;
  j = "{\"type\":\"ego\",\"node\":";
  AppendU64(&j, u);
  AppendVersionFields(&j, snap);
  j += ",\"out_degree\":";
  AppendU64(&j, out_deg);
  j += ",\"in_degree\":";
  AppendU64(&j, in_deg);
  j += ",\"mutual\":";
  AppendU64(&j, mutual);
  j += ",\"reach_2hop\":";
  AppendU64(&j, reach);
  j += ",\"pagerank\":";
  j += JsonDouble(warm.pagerank[u]);
  j += ",\"rank\":";
  AppendU64(&j, warm.rank_of[u]);
  j += ",\"wcc_id\":";
  AppendU64(&j, warm.wcc.label[u]);
  j += ",\"wcc_size\":";
  AppendU64(&j, warm.wcc.sizes[warm.wcc.label[u]]);
  j += ",\"scc_id\":";
  AppendU64(&j, warm.scc.label[u]);
  j += ",\"scc_size\":";
  AppendU64(&j, warm.scc.sizes[warm.scc.label[u]]);
  j += ",\"is_sink\":";
  AppendBool(&j, out_deg == 0 && in_deg > 0);
  j += ",\"is_isolated\":";
  AppendBool(&j, out_deg == 0 && in_deg == 0);
  j += ",\"degraded\":false}";
  return resp;
}

QueryResponse QueryEngine::DoTopKRank(const Request& r, const QueryCtx& ctx) {
  const WarmIndexes& warm = *ctx.warm;
  const uint32_t returned =
      std::min<uint32_t>(r.k, static_cast<uint32_t>(warm.rank_order.size()));
  QueryResponse resp;
  std::string& j = resp.json;
  j = "{\"type\":\"topk\",\"k\":";
  AppendU64(&j, r.k);
  j += ",\"returned\":";
  AppendU64(&j, returned);
  AppendVersionFields(&j, ctx.snap);
  j += ",\"rows\":[";
  for (uint32_t i = 0; i < returned; ++i) {
    const NodeId u = warm.rank_order[i];
    if (i > 0) j += ',';
    j += "{\"rank\":";
    AppendU64(&j, i + 1);
    j += ",\"node\":";
    AppendU64(&j, u);
    j += ",\"score\":";
    j += JsonDouble(warm.pagerank[u]);
    j += ",\"in_degree\":";
    // Ordering and scores are as-of the epoch base ("as_of"); the degree
    // columns are exact at the snapshot version.
    AppendU64(&j, ctx.snap != nullptr ? ctx.snap->InDegree(u)
                                      : graph_.InDegree(u));
    j += ",\"out_degree\":";
    AppendU64(&j, ctx.snap != nullptr ? ctx.snap->OutDegree(u)
                                      : graph_.OutDegree(u));
    j += '}';
  }
  j += "],\"degraded\":false}";
  return resp;
}

QueryResponse QueryEngine::DoDistance(const Request& r,
                                      const util::Deadline& deadline,
                                      const QueryCtx& ctx) {
  if (r.node >= graph_.num_nodes() || r.target >= graph_.num_nodes()) {
    return ErrorResponse(r, Status::NotFound("distance endpoint not in graph"));
  }
  const WarmIndexes& warm = *ctx.warm;
  // The hub-label oracle answers as-of the epoch base. On a live engine
  // it stays in charge only while both endpoints are untouched at the
  // snapshot version (bounded staleness: intermediate churn may shift the
  // true distance, endpoint churn may not go unseen); a touched endpoint
  // routes to the overlay-aware BFS, exact at the snapshot version. The
  // choice is a pure function of (epoch, version, request), so pinned
  // replays stay deterministic.
  const bool oracle_ok =
      !warm.hub_labels.empty() &&
      (ctx.snap == nullptr ||
       (!ctx.snap->Touched(r.node) && !ctx.snap->Touched(r.target)));
  BoundedDistanceResult d;
  if (oracle_ok) {
    // Oracle fast path: exact distance by label intersection, no graph
    // traversal, no deadline interaction — it cannot degrade.
    ELITENET_COUNT("serve.dist.oracle_hit", 1);
    util::SpanTimer intersect_timer;
    d.distance = warm.hub_labels.Distance(r.node, r.target);
    ELITENET_HISTOGRAM("serve.dist.intersect_us",
                       static_cast<uint64_t>(intersect_timer.Seconds() * 1e6));
  } else {
    ELITENET_COUNT("serve.dist.bfs_fallback", 1);
    std::unique_ptr<Scratch> scratch = BorrowScratch();
    if (ctx.snap != nullptr) {
      d = BoundedBidirectionalDistance(SnapAdj{ctx.snap}, r.node, r.target,
                                       deadline, &scratch->fwd, &scratch->bwd);
    } else {
      d = BoundedBidirectionalDistance(GraphAdj{&graph_}, r.node, r.target,
                                       deadline, &scratch->fwd, &scratch->bwd);
    }
    ReturnScratch(std::move(scratch));
  }

  QueryResponse resp;
  resp.degraded = !d.completed;
  if (resp.degraded) ELITENET_COUNT("serve.degraded", 1);
  std::string& j = resp.json;
  j = "{\"type\":\"dist\",\"src\":";
  AppendU64(&j, r.node);
  j += ",\"dst\":";
  AppendU64(&j, r.target);
  AppendVersionFields(&j, ctx.snap);
  if (d.completed) {
    // Note: no traversal-cost field here — a completed answer must be a
    // pure function of (graph, request) so the oracle and BFS paths stay
    // byte-identical (and cacheable interchangeably).
    const bool reachable = d.distance != UINT32_MAX;
    j += ",\"reachable\":";
    AppendBool(&j, reachable);
    j += ",\"distance\":";
    AppendI64(&j, reachable ? static_cast<int64_t>(d.distance) : -1);
  } else {
    // Deadline hit (BFS fallback only): the true distance is unknown but
    // provably at least lower_bound (every completed level failed to
    // meet). Degraded responses are never cached, so the diagnostic
    // expansion count is safe to include.
    j += ",\"reachable\":null,\"distance\":-1,\"lower_bound\":";
    AppendU64(&j, d.lower_bound);
    j += ",\"expanded\":";
    AppendU64(&j, d.expanded);
  }
  j += ",\"degraded\":";
  AppendBool(&j, resp.degraded);
  j += '}';
  return resp;
}

QueryResponse QueryEngine::DoNeighbors(const Request& r, const QueryCtx& ctx) {
  const NodeId u = r.node;
  if (u >= graph_.num_nodes()) {
    return ErrorResponse(
        r, Status::NotFound("node " + std::to_string(u) + " not in graph"));
  }
  // Live engines materialize the merged row at the snapshot version; its
  // order (ascending) matches the static CSR row, so a node untouched
  // since the base was built lists identically on both paths.
  std::vector<NodeId> merged;
  if (ctx.snap != nullptr) {
    if (r.direction == NeighborDirection::kOut) {
      ctx.snap->CollectOut(u, &merged);
    } else {
      ctx.snap->CollectIn(u, &merged);
    }
  }
  const std::span<const NodeId> all =
      ctx.snap != nullptr ? std::span<const NodeId>(merged)
      : r.direction == NeighborDirection::kOut ? graph_.OutNeighbors(u)
                                               : graph_.InNeighbors(u);
  const size_t returned = std::min<size_t>(r.limit, all.size());
  QueryResponse resp;
  std::string& j = resp.json;
  j = "{\"type\":\"neighbors\",\"node\":";
  AppendU64(&j, u);
  AppendVersionFields(&j, ctx.snap);
  j += ",\"dir\":\"";
  j += r.direction == NeighborDirection::kOut ? "out" : "in";
  j += "\",\"total\":";
  AppendU64(&j, all.size());
  j += ",\"returned\":";
  AppendU64(&j, returned);
  j += ",\"nodes\":[";
  for (size_t i = 0; i < returned; ++i) {
    if (i > 0) j += ',';
    AppendU64(&j, all[i]);
  }
  j += "],\"degraded\":false}";
  return resp;
}

QueryResponse QueryEngine::DoFingerprint(const QueryCtx& ctx) {
  const WarmIndexes& warm = *ctx.warm;
  if (!warm.fingerprint_ok) {
    Request r;
    r.type = RequestType::kFingerprint;
    return ErrorResponse(
        r, Status::FailedPrecondition("fingerprint unavailable: " +
                                      warm.fingerprint_error));
  }
  QueryResponse resp;
  std::string& j = resp.json;
  // Every fingerprint field is a whole-graph statistic as-of the epoch
  // base — "as_of" is the honest timestamp; "version" says when it was
  // asked.
  j = "{\"type\":\"fingerprint\"";
  AppendVersionFields(&j, ctx.snap);
  j += ",\"density\":";
  j += JsonDouble(warm.fingerprint.density);
  j += ",\"reciprocity\":";
  j += JsonDouble(warm.fingerprint.reciprocity);
  j += ",\"clustering\":";
  j += JsonDouble(warm.fingerprint.clustering);
  j += ",\"assortativity\":";
  j += JsonDouble(warm.fingerprint.assortativity);
  j += ",\"giant_scc_fraction\":";
  j += JsonDouble(warm.fingerprint.giant_scc_fraction);
  j += ",\"mean_distance\":";
  j += JsonDouble(warm.fingerprint.mean_distance);
  j += ",\"powerlaw_alpha\":";
  j += JsonDouble(warm.fingerprint.powerlaw_alpha);
  j += ",\"attracting_fraction\":";
  j += JsonDouble(warm.fingerprint.attracting_fraction);
  j += ",\"similarity_to_paper\":";
  j += JsonDouble(warm.fingerprint_similarity);
  j += ",\"degraded\":false}";
  return resp;
}

std::unique_ptr<QueryEngine::Scratch> QueryEngine::BorrowScratch() {
  {
    std::lock_guard<std::mutex> lock(impl_->scratch_mutex);
    if (!impl_->scratch_pool.empty()) {
      std::unique_ptr<Scratch> s = std::move(impl_->scratch_pool.back());
      impl_->scratch_pool.pop_back();
      return s;
    }
  }
  return std::make_unique<Scratch>(graph_.num_nodes());
}

void QueryEngine::ReturnScratch(std::unique_ptr<Scratch> s) {
  std::lock_guard<std::mutex> lock(impl_->scratch_mutex);
  impl_->scratch_pool.push_back(std::move(s));
}

int QueryEngine::threads() const {
  return static_cast<int>(impl_->workers.size());
}

uint64_t QueryEngine::cache_hits() const {
  return impl_->cache != nullptr ? impl_->cache->hits() : 0;
}

uint64_t QueryEngine::cache_misses() const {
  return impl_->cache != nullptr ? impl_->cache->misses() : 0;
}

void QueryEngine::ClearResultCache() {
  if (impl_->cache != nullptr) impl_->cache->Clear();
}

void QueryEngine::SetTelemetryEnabled(bool on) {
  telemetry_->set_enabled(on);
}

bool QueryEngine::distance_oracle_active() const {
  if (live_ != nullptr) {
    const LiveSnapshot snap = live_->Snapshot();
    const auto* warm = static_cast<const WarmIndexes*>(snap.warm_payload());
    return warm != nullptr && !warm->hub_labels.empty();
  }
  return !warm_.hub_labels.empty();
}

Result<LiveSnapshot> QueryEngine::ResolveSnapshot(const Request& r) const {
  if (r.version == 0) return live_->Snapshot();
  return live_->SnapshotAt(r.version);
}

Result<ApplyOutcome> QueryEngine::Apply(const Mutation& m) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "mutations require a live engine (CreateLive)");
  }
  auto out = live_->Apply(m);
  if (out.ok() && compactor_.joinable() &&
      out->version - live_->base_version() >= live_options_.compact_after) {
    compactor_cv_.notify_one();
  }
  return out;
}

Result<CompactionStats> QueryEngine::CompactNow() {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "compaction requires a live engine (CreateLive)");
  }
  if (live_options_.compact_path.empty()) {
    return Status::FailedPrecondition(
        "no compact_path configured in LiveEngineOptions");
  }
  const std::string path = live_options_.compact_path;
  return live_->Compact(
      path,
      [this, &path](const DiGraph& g) -> Result<std::shared_ptr<const void>> {
        WarmIndexes w;
        EN_RETURN_IF_ERROR(ComputeWarmIndexes(g, options_, &w));
        // Best-effort sidecar next to the snapshot: a restart from the
        // compacted file warm-starts instead of recomputing.
        WarmIndexKey key;
        key.graph_checksum = graph::GraphChecksum(g);
        key.config_hash = WarmConfigHash(options_.pagerank,
                                         options_.fingerprint,
                                         options_.distance_oracle);
        (void)SaveWarmIndexes(path + ".widx", key, w);
        return std::shared_ptr<const void>(
            std::make_shared<const WarmIndexes>(std::move(w)));
      });
}

void QueryEngine::CompactorLoop() {
  std::unique_lock<std::mutex> lock(compactor_mutex_);
  for (;;) {
    compactor_cv_.wait(lock, [this] {
      return compactor_stop_ ||
             live_->applied_version() - live_->base_version() >=
                 live_options_.compact_after;
    });
    if (compactor_stop_) return;
    lock.unlock();
    auto done = CompactNow();
    lock.lock();
    if (!done.ok()) {
      ELITENET_COUNT("serve.compact.errors", 1);
      // The trigger condition is still true; back off instead of spinning
      // against a persistently failing disk.
      compactor_cv_.wait_for(lock, std::chrono::milliseconds(200),
                             [this] { return compactor_stop_; });
    }
  }
}

OverlayStats QueryEngine::overlay_stats() const {
  return live_ != nullptr ? live_->Stats() : OverlayStats();
}

uint64_t QueryEngine::applied_version() const {
  return live_ != nullptr ? live_->applied_version() : 0;
}

LiveSnapshot QueryEngine::live_snapshot() const {
  return live_ != nullptr ? live_->Snapshot() : LiveSnapshot();
}

EngineStatsContext QueryEngine::StatsContext() const {
  EngineStatsContext ctx;
  ctx.nodes = graph_.num_nodes();
  ctx.edges = graph_.num_edges();
  ctx.workers = threads();
  ctx.oracle_active = distance_oracle_active();
  ctx.cache_hits = cache_hits();
  ctx.cache_misses = cache_misses();
  ctx.warmup_seconds = warmup_seconds_;
  ctx.warm_from_cache = warm_from_cache_;
  ctx.inflight = impl_->inflight.load(std::memory_order_relaxed);
  if (live_ != nullptr) {
    ctx.live = true;
    ctx.overlay = live_->Stats();
    ctx.edges = ctx.overlay.live_edges;
  }
  return ctx;
}

std::string QueryEngine::AdminResponse(const AdminCommand& cmd) const {
  switch (cmd.kind) {
    case AdminCommand::Kind::kStats:
      return RenderStatsJson(*telemetry_, StatsContext());
    case AdminCommand::Kind::kHealthz:
      return RenderHealthzJson(*telemetry_, StatsContext());
    case AdminCommand::Kind::kRecent:
      return RenderRecentJson(*telemetry_, cmd.n);
    case AdminCommand::Kind::kSlow:
      return RenderSlowJson(*telemetry_, cmd.n);
    case AdminCommand::Kind::kTrace:
      return RenderTraceJson(*telemetry_, cmd.trace_id);
    case AdminCommand::Kind::kVersion:
      return RenderVersionJson(StatsContext());
    case AdminCommand::Kind::kOverlay:
      return RenderOverlayJson(StatsContext());
  }
  return "{\"type\":\"error\",\"code\":\"internal\",\"message\":\"unhandled "
         "admin command\"}";
}

}  // namespace serve
}  // namespace elitenet

#include "serve/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "graph/frontier.h"
#include "graph/io.h"
#include "graph/traversal.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/string_utils.h"
#include "util/trace.h"

namespace elitenet {
namespace serve {

using graph::DiGraph;
using graph::NodeId;

namespace {

void AppendU64(std::string* out, uint64_t v) { *out += std::to_string(v); }

void AppendI64(std::string* out, int64_t v) { *out += std::to_string(v); }

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

// Deadline-aware bounded bidirectional search. Identical expansion order
// to analysis::BidirectionalDistance (advance the smaller frontier, finish
// the level, take the best meeting) with one deadline poll per level, so a
// query that finishes in time returns exactly the bytes the analysis
// kernel would.
struct BoundedDistanceResult {
  uint32_t distance = UINT32_MAX;
  /// Proven minimum for the true distance: completed levels with no
  /// meeting push it up; UINT32_MAX once unreachability is proven.
  uint32_t lower_bound = 0;
  uint64_t expanded = 0;
  /// False when the deadline expired first (distance is then unknown).
  bool completed = true;
};

BoundedDistanceResult BoundedBidirectionalDistance(
    const DiGraph& g, NodeId source, NodeId target,
    const util::Deadline& deadline, graph::ScratchArena* fwd,
    graph::ScratchArena* bwd) {
  BoundedDistanceResult out;
  if (source == target) {
    out.distance = 0;
    return out;
  }
  out.lower_bound = 1;

  constexpr uint32_t kUnset = UINT32_MAX;
  fwd->BeginEpoch();
  bwd->BeginEpoch();
  std::vector<NodeId>& fwd_frontier = fwd->frontier();
  std::vector<NodeId>& bwd_frontier = bwd->frontier();
  fwd_frontier.assign(1, source);
  bwd_frontier.assign(1, target);
  fwd->Visit(source, 0, graph::kNoParent);
  bwd->Visit(target, 0, graph::kNoParent);
  uint32_t fwd_depth = 0, bwd_depth = 0;

  while (!fwd_frontier.empty() && !bwd_frontier.empty()) {
    if (deadline.Expired()) {
      out.completed = false;
      return out;
    }
    const bool advance_forward = fwd_frontier.size() <= bwd_frontier.size();
    uint32_t best = kUnset;
    if (advance_forward) {
      std::vector<NodeId>& next = fwd->next();
      next.clear();
      ++fwd_depth;
      for (NodeId u : fwd_frontier) {
        ++out.expanded;
        for (NodeId v : g.OutNeighbors(u)) {
          if (fwd->Visited(v)) continue;
          fwd->Visit(v, fwd_depth, u);
          if (bwd->Visited(v)) {
            best = std::min(best, fwd_depth + bwd->Distance(v));
          }
          next.push_back(v);
        }
      }
      fwd_frontier.swap(next);
    } else {
      std::vector<NodeId>& next = bwd->next();
      next.clear();
      ++bwd_depth;
      for (NodeId u : bwd_frontier) {
        ++out.expanded;
        for (NodeId v : g.InNeighbors(u)) {
          if (bwd->Visited(v)) continue;
          bwd->Visit(v, bwd_depth, u);
          if (fwd->Visited(v)) {
            best = std::min(best, bwd_depth + fwd->Distance(v));
          }
          next.push_back(v);
        }
      }
      bwd_frontier.swap(next);
    }
    if (best != kUnset) {
      out.distance = best;
      out.lower_bound = best;
      return out;
    }
    // Both levels complete with no meeting: any s->t path is longer than
    // everything explored from either side.
    out.lower_bound = fwd_depth + bwd_depth + 1;
  }
  out.lower_bound = kUnset;  // exhausted a side: provably unreachable
  return out;
}

}  // namespace

struct QueryEngine::Scratch {
  explicit Scratch(NodeId n) : fwd(n), bwd(n) {}
  graph::ScratchArena fwd;
  graph::ScratchArena bwd;
};

struct QueryEngine::Impl {
  struct Job {
    Request req;
    util::Deadline deadline;
    std::promise<QueryResponse> promise;
    uint64_t seq = 0;  ///< Telemetry sequence, assigned at submission.
    std::chrono::steady_clock::time_point submitted;
  };

  std::unique_ptr<util::ShardedLruCache<std::string, std::string>> cache;

  std::mutex scratch_mutex;
  std::vector<std::unique_ptr<Scratch>> scratch_pool;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  bool shutdown = false;
  std::vector<std::thread> workers;
  std::atomic<int64_t> inflight{0};
};

QueryEngine::QueryEngine(DiGraph g, const EngineOptions& options)
    : graph_(std::move(g)),
      options_(options),
      impl_(new Impl),
      telemetry_(new Telemetry(options.telemetry)) {
  if (options_.cache_capacity > 0) {
    impl_->cache =
        std::make_unique<util::ShardedLruCache<std::string, std::string>>(
            options_.cache_capacity, std::max<size_t>(1, options_.cache_shards));
  }
}

QueryEngine::~QueryEngine() {
  // Stop the exporter first: its final snapshot must run while the
  // engine (cache counters, inflight gauge) is still alive.
  exporter_.reset();
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->shutdown = true;
  }
  impl_->queue_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    DiGraph g, const EngineOptions& options) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot serve an empty graph");
  }
  std::unique_ptr<QueryEngine> engine(
      new QueryEngine(std::move(g), options));
  EN_RETURN_IF_ERROR(engine->Warmup());
  engine->StartWorkers();
  if (!options.metrics_path.empty()) {
    // Exposition implies recording: flip the util metrics switch so the
    // macro-based counters/sketches the snapshots embed are live.
    util::SetMetricsEnabled(true);
    QueryEngine* raw = engine.get();
    engine->exporter_ = std::make_unique<TelemetryExporter>(
        engine->telemetry_.get(), options.metrics_path,
        options.metrics_interval_ms,
        [raw] { return raw->StatsContext(); });
  }
  return engine;
}

Status QueryEngine::Warmup() {
  util::SpanTimer timer("serve.warmup");
  WarmIndexKey key;
  if (!options_.warm_index_path.empty()) {
    key.graph_checksum = graph::GraphChecksum(graph_);
    key.config_hash = WarmConfigHash(options_.pagerank, options_.fingerprint,
                                     options_.distance_oracle);
    ELITENET_SPAN("serve.warm.widx_load");
    auto restored =
        LoadWarmIndexes(options_.warm_index_path, key, graph_.num_nodes());
    if (restored.ok()) {
      ELITENET_COUNT("serve.widx.hit", 1);
      warm_ = std::move(*restored);
      warm_from_cache_ = true;
      warmup_seconds_ = timer.Seconds();
      return Status::OK();
    }
    ELITENET_COUNT("serve.widx.miss", 1);
  }
  EN_RETURN_IF_ERROR(BuildWarmIndexes());
  if (!options_.warm_index_path.empty()) {
    // Best-effort: a read-only filesystem must not fail engine startup.
    ELITENET_SPAN("serve.warm.widx_write");
    if (SaveWarmIndexes(options_.warm_index_path, key, warm_).ok()) {
      ELITENET_COUNT("serve.widx.write", 1);
    }
  }
  warmup_seconds_ = timer.Seconds();
  return Status::OK();
}

Status QueryEngine::BuildWarmIndexes() {
  const DiGraph& g = graph_;
  {
    ELITENET_SPAN("serve.warm.degree");
    warm_.degree_stats = analysis::ComputeDegreeStats(g);
    warm_.reciprocity = analysis::ComputeReciprocity(g);
    warm_.mutual_degree.assign(g.num_nodes(), 0);
    util::ParallelFor(0, g.num_nodes(), 0, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const NodeId u = static_cast<NodeId>(i);
        uint32_t mutual = 0;
        for (NodeId v : g.OutNeighbors(u)) {
          if (g.HasEdge(v, u)) ++mutual;
        }
        warm_.mutual_degree[i] = mutual;
      }
    });
  }
  {
    ELITENET_SPAN("serve.warm.components");
    warm_.wcc = analysis::WeaklyConnectedComponents(g);
    warm_.scc = analysis::StronglyConnectedComponents(g);
  }
  {
    ELITENET_SPAN("serve.warm.pagerank");
    auto pr = analysis::PageRank(g, options_.pagerank);
    if (!pr.ok()) return pr.status();
    warm_.pagerank = std::move(pr->scores);
    warm_.rank_order = analysis::TopKByScore(warm_.pagerank, g.num_nodes());
    warm_.rank_of.assign(g.num_nodes(), 0);
    for (size_t i = 0; i < warm_.rank_order.size(); ++i) {
      warm_.rank_of[warm_.rank_order[i]] = static_cast<uint32_t>(i + 1);
    }
  }
  if (options_.distance_oracle) {
    // May return an unbuilt (empty) labeling when the pruned-label budget
    // is exceeded; dist then serves via the BFS fallback. Either outcome
    // is persisted as-is, so a restored engine behaves identically.
    ELITENET_SPAN("serve.warm.dist_oracle");
    warm_.hub_labels = graph::BuildHubLabels(g);
  }
  {
    ELITENET_SPAN("serve.warm.fingerprint");
    auto fp = core::ComputeFingerprint(g, options_.fingerprint);
    if (fp.ok()) {
      warm_.fingerprint = *fp;
      warm_.fingerprint_similarity =
          core::FingerprintSimilarity(*fp, core::PaperFingerprint());
      warm_.fingerprint_ok = true;
    } else {
      warm_.fingerprint_error = fp.status().ToString();
    }
  }
  return Status::OK();
}

void QueryEngine::StartWorkers() {
  const int n = std::max(1, options_.threads);
  impl_->workers.reserve(n);
  for (int i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { WorkerLoop(); });
  }
}

void QueryEngine::WorkerLoop() {
  for (;;) {
    Impl::Job job;
    {
      std::unique_lock<std::mutex> lock(impl_->queue_mutex);
      impl_->queue_cv.wait(lock, [this] {
        return impl_->shutdown || !impl_->queue.empty();
      });
      if (impl_->queue.empty()) return;  // shutdown with nothing pending
      job = std::move(impl_->queue.front());
      impl_->queue.pop_front();
      // Drain-side depth sample: together with the submission-side one,
      // the queue_depth distribution sees both the arrival and the
      // departure view of the backlog.
      ELITENET_HISTOGRAM("serve.queue_depth", impl_->queue.size());
    }
    RequestMeta meta;
    meta.seq = job.seq;
    meta.queued = true;
    meta.queue_wait_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - job.submitted)
            .count());
    ELITENET_SKETCH("serve.queue.wait_us", meta.queue_wait_us);
    job.promise.set_value(ExecuteWithDeadline(job.req, job.deadline, meta));
  }
}

std::future<QueryResponse> QueryEngine::Submit(const Request& r) {
  Impl::Job job;
  job.req = r;
  job.deadline = r.deadline_us > 0 ? util::Deadline::After(r.deadline_us)
                                   : util::Deadline::Infinite();
  // Sequence numbers are claimed at submission (not execution) so a
  // replayed request stream maps to the same trace ids no matter how the
  // workers interleave.
  if (telemetry_->enabled()) job.seq = telemetry_->NextSeq();
  job.submitted = std::chrono::steady_clock::now();
  std::future<QueryResponse> fut = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    ELITENET_HISTOGRAM("serve.queue_depth", impl_->queue.size());
    impl_->queue.push_back(std::move(job));
  }
  impl_->queue_cv.notify_one();
  return fut;
}

QueryResponse QueryEngine::Execute(const Request& r) {
  return ExecuteWithDeadline(r,
                             r.deadline_us > 0
                                 ? util::Deadline::After(r.deadline_us)
                                 : util::Deadline::Infinite(),
                             RequestMeta());
}

QueryResponse QueryEngine::ExecuteLine(std::string_view line) {
  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    ELITENET_COUNT("serve.requests", 1);
    ELITENET_COUNT("serve.errors", 1);
    QueryResponse resp;
    resp.ok = false;
    resp.json = "{\"type\":\"error\",\"code\":\"";
    resp.json += StatusCodeToString(parsed.status().code());
    resp.json += "\",\"message\":\"";
    resp.json += JsonEscape(parsed.status().message());
    resp.json += "\",\"request\":\"";
    resp.json += JsonEscape(util::StripAsciiWhitespace(line));
    resp.json += "\"}";
    return resp;
  }
  return Execute(*parsed);
}

namespace {

const char* SpanNameFor(RequestType type) {
  switch (type) {
    case RequestType::kEgoSummary:
      return "serve.ego";
    case RequestType::kTopKRank:
      return "serve.topk";
    case RequestType::kDistance:
      return "serve.dist";
    case RequestType::kNeighbors:
      return "serve.neighbors";
    case RequestType::kFingerprint:
      return "serve.fingerprint";
  }
  return "serve.unknown";
}

// Distinct macro call sites per type: the metrics macros cache their
// metric pointer per call site, so one shared site with a runtime name
// would bind every type to the first sketch it saw. Sketches (not the
// power-of-two histograms) so the exported snapshots carry live
// p50/p95/p99 per type at O(1) memory.
void RecordLatency(RequestType type, uint64_t micros) {
  switch (type) {
    case RequestType::kEgoSummary:
      ELITENET_SKETCH("serve.latency_us.ego", micros);
      break;
    case RequestType::kTopKRank:
      ELITENET_SKETCH("serve.latency_us.topk", micros);
      break;
    case RequestType::kDistance:
      ELITENET_SKETCH("serve.latency_us.dist", micros);
      break;
    case RequestType::kNeighbors:
      ELITENET_SKETCH("serve.latency_us.neighbors", micros);
      break;
    case RequestType::kFingerprint:
      ELITENET_SKETCH("serve.latency_us.fingerprint", micros);
      break;
  }
}

QueryResponse ErrorResponse(const Request& r, const Status& status) {
  ELITENET_COUNT("serve.errors", 1);
  QueryResponse resp;
  resp.ok = false;
  resp.json = "{\"type\":\"error\",\"code\":\"";
  resp.json += StatusCodeToString(status.code());
  resp.json += "\",\"message\":\"";
  resp.json += JsonEscape(status.message());
  resp.json += "\",\"request\":\"";
  resp.json += JsonEscape(CanonicalEncoding(r));
  resp.json += "\"}";
  return resp;
}

}  // namespace

QueryResponse QueryEngine::ExecuteWithDeadline(const Request& r,
                                               const util::Deadline& deadline,
                                               const RequestMeta& meta) {
  ELITENET_COUNT("serve.requests", 1);
  Telemetry* tel =
      telemetry_->enabled() ? telemetry_.get() : nullptr;
  uint64_t seq = 0;
  uint64_t trace_id = 0;
  bool sampled = false;
  if (tel != nullptr) {
    // Synchronous Execute() claims its sequence here; Submit() claimed it
    // at enqueue time so trace ids follow submission order.
    seq = meta.seq != 0 ? meta.seq : tel->NextSeq();
    trace_id = TraceIdFor(seq);
    sampled = tel->Sampled(trace_id);
  }
  // Sampled requests capture their span tree via the thread-local sink;
  // unsampled ones pay only the null-pointer check inside each span.
  std::optional<util::SpanCapture> capture;
  if (sampled) capture.emplace();

  const int64_t inflight =
      impl_->inflight.fetch_add(1, std::memory_order_relaxed) + 1;
  ELITENET_GAUGE_SET("serve.inflight", inflight);
  util::SpanTimer timer;

  QueryResponse resp;
  {
    util::ScopedSpan span(SpanNameFor(r.type));
    std::string key;
    bool from_cache = false;
    if (impl_->cache != nullptr) {
      key = CacheKey(r);
      std::string cached;
      if (impl_->cache->Get(key, &cached)) {
        ELITENET_COUNT("serve.cache.hit", 1);
        resp.json = std::move(cached);
        resp.cache_hit = true;
        from_cache = true;
      } else {
        ELITENET_COUNT("serve.cache.miss", 1);
      }
    }
    if (!from_cache) {
      resp = Compute(r, deadline);
      if (resp.ok && !resp.degraded && impl_->cache != nullptr) {
        impl_->cache->Put(key, resp.json);
      }
    }
  }  // root span closes here so a sampled capture sees its duration

  const uint64_t latency_us = static_cast<uint64_t>(timer.Seconds() * 1e6);
  RecordLatency(r.type, latency_us);
  // Keep the fetch_sub outside the macro: ELITENET_GAUGE_SET skips its
  // value argument when metrics are disabled, and the matching fetch_add
  // above runs unconditionally.
  const int64_t now_inflight =
      impl_->inflight.fetch_sub(1, std::memory_order_relaxed) - 1;
  ELITENET_GAUGE_SET("serve.inflight", now_inflight);
  if (tel != nullptr) {
    RequestRecord record;
    record.trace_id = trace_id;
    record.seq = seq;
    record.request = r;
    record.ok = resp.ok;
    record.degraded = resp.degraded;
    record.cache_hit = resp.cache_hit;
    record.sampled = sampled;
    record.queued = meta.queued;
    record.queue_wait_us = meta.queue_wait_us;
    record.latency_us = latency_us;
    record.deadline_slack_us = deadline.RemainingMicros();
    record.deadline_missed =
        !deadline.infinite() && record.deadline_slack_us == 0;
    record.oracle_fallback = r.type == RequestType::kDistance &&
                             !resp.cache_hit && !distance_oracle_active();
    if (capture.has_value()) {
      record.spans = capture->Take();
      record.spans_truncated = capture->truncated();
    }
    tel->Record(std::move(record));
  }
  return resp;
}

QueryResponse QueryEngine::Compute(const Request& r,
                                   const util::Deadline& deadline) {
  ELITENET_SPAN("serve.compute");
  switch (r.type) {
    case RequestType::kEgoSummary:
      return DoEgoSummary(r);
    case RequestType::kTopKRank:
      return DoTopKRank(r);
    case RequestType::kDistance:
      return DoDistance(r, deadline);
    case RequestType::kNeighbors:
      return DoNeighbors(r);
    case RequestType::kFingerprint:
      return DoFingerprint();
  }
  return ErrorResponse(r, Status::Internal("unhandled request type"));
}

QueryResponse QueryEngine::DoEgoSummary(const Request& r) {
  const NodeId u = r.node;
  if (u >= graph_.num_nodes()) {
    return ErrorResponse(
        r, Status::NotFound("node " + std::to_string(u) + " not in graph"));
  }
  // Two-hop out-reach (distinct nodes within <= 2 follows, excluding u):
  // the per-user audience estimate verification-style lookups want. Marked
  // in a pooled arena so hub queries do not allocate O(n) scratch.
  std::unique_ptr<Scratch> scratch = BorrowScratch();
  graph::ScratchArena& a = scratch->fwd;
  a.BeginEpoch();
  a.Visit(u, 0, graph::kNoParent);
  uint64_t reach = 0;
  for (NodeId v : graph_.OutNeighbors(u)) {
    if (!a.Visited(v)) {
      a.Visit(v, 1, u);
      ++reach;
    }
  }
  for (NodeId v : graph_.OutNeighbors(u)) {
    for (NodeId w : graph_.OutNeighbors(v)) {
      if (!a.Visited(w)) {
        a.Visit(w, 2, v);
        ++reach;
      }
    }
  }
  ReturnScratch(std::move(scratch));

  const uint32_t out_deg = graph_.OutDegree(u);
  const uint32_t in_deg = graph_.InDegree(u);
  QueryResponse resp;
  std::string& j = resp.json;
  j = "{\"type\":\"ego\",\"node\":";
  AppendU64(&j, u);
  j += ",\"out_degree\":";
  AppendU64(&j, out_deg);
  j += ",\"in_degree\":";
  AppendU64(&j, in_deg);
  j += ",\"mutual\":";
  AppendU64(&j, warm_.mutual_degree[u]);
  j += ",\"reach_2hop\":";
  AppendU64(&j, reach);
  j += ",\"pagerank\":";
  j += JsonDouble(warm_.pagerank[u]);
  j += ",\"rank\":";
  AppendU64(&j, warm_.rank_of[u]);
  j += ",\"wcc_id\":";
  AppendU64(&j, warm_.wcc.label[u]);
  j += ",\"wcc_size\":";
  AppendU64(&j, warm_.wcc.sizes[warm_.wcc.label[u]]);
  j += ",\"scc_id\":";
  AppendU64(&j, warm_.scc.label[u]);
  j += ",\"scc_size\":";
  AppendU64(&j, warm_.scc.sizes[warm_.scc.label[u]]);
  j += ",\"is_sink\":";
  AppendBool(&j, out_deg == 0 && in_deg > 0);
  j += ",\"is_isolated\":";
  AppendBool(&j, out_deg == 0 && in_deg == 0);
  j += ",\"degraded\":false}";
  return resp;
}

QueryResponse QueryEngine::DoTopKRank(const Request& r) {
  const uint32_t returned =
      std::min<uint32_t>(r.k, static_cast<uint32_t>(warm_.rank_order.size()));
  QueryResponse resp;
  std::string& j = resp.json;
  j = "{\"type\":\"topk\",\"k\":";
  AppendU64(&j, r.k);
  j += ",\"returned\":";
  AppendU64(&j, returned);
  j += ",\"rows\":[";
  for (uint32_t i = 0; i < returned; ++i) {
    const NodeId u = warm_.rank_order[i];
    if (i > 0) j += ',';
    j += "{\"rank\":";
    AppendU64(&j, i + 1);
    j += ",\"node\":";
    AppendU64(&j, u);
    j += ",\"score\":";
    j += JsonDouble(warm_.pagerank[u]);
    j += ",\"in_degree\":";
    AppendU64(&j, graph_.InDegree(u));
    j += ",\"out_degree\":";
    AppendU64(&j, graph_.OutDegree(u));
    j += '}';
  }
  j += "],\"degraded\":false}";
  return resp;
}

QueryResponse QueryEngine::DoDistance(const Request& r,
                                      const util::Deadline& deadline) {
  if (r.node >= graph_.num_nodes() || r.target >= graph_.num_nodes()) {
    return ErrorResponse(r, Status::NotFound("distance endpoint not in graph"));
  }
  BoundedDistanceResult d;
  if (!warm_.hub_labels.empty()) {
    // Oracle fast path: exact distance by label intersection, no graph
    // traversal, no deadline interaction — it cannot degrade.
    ELITENET_COUNT("serve.dist.oracle_hit", 1);
    util::SpanTimer intersect_timer;
    d.distance = warm_.hub_labels.Distance(r.node, r.target);
    ELITENET_HISTOGRAM("serve.dist.intersect_us",
                       static_cast<uint64_t>(intersect_timer.Seconds() * 1e6));
  } else {
    ELITENET_COUNT("serve.dist.bfs_fallback", 1);
    std::unique_ptr<Scratch> scratch = BorrowScratch();
    d = BoundedBidirectionalDistance(graph_, r.node, r.target, deadline,
                                     &scratch->fwd, &scratch->bwd);
    ReturnScratch(std::move(scratch));
  }

  QueryResponse resp;
  resp.degraded = !d.completed;
  if (resp.degraded) ELITENET_COUNT("serve.degraded", 1);
  std::string& j = resp.json;
  j = "{\"type\":\"dist\",\"src\":";
  AppendU64(&j, r.node);
  j += ",\"dst\":";
  AppendU64(&j, r.target);
  if (d.completed) {
    // Note: no traversal-cost field here — a completed answer must be a
    // pure function of (graph, request) so the oracle and BFS paths stay
    // byte-identical (and cacheable interchangeably).
    const bool reachable = d.distance != UINT32_MAX;
    j += ",\"reachable\":";
    AppendBool(&j, reachable);
    j += ",\"distance\":";
    AppendI64(&j, reachable ? static_cast<int64_t>(d.distance) : -1);
  } else {
    // Deadline hit (BFS fallback only): the true distance is unknown but
    // provably at least lower_bound (every completed level failed to
    // meet). Degraded responses are never cached, so the diagnostic
    // expansion count is safe to include.
    j += ",\"reachable\":null,\"distance\":-1,\"lower_bound\":";
    AppendU64(&j, d.lower_bound);
    j += ",\"expanded\":";
    AppendU64(&j, d.expanded);
  }
  j += ",\"degraded\":";
  AppendBool(&j, resp.degraded);
  j += '}';
  return resp;
}

QueryResponse QueryEngine::DoNeighbors(const Request& r) {
  const NodeId u = r.node;
  if (u >= graph_.num_nodes()) {
    return ErrorResponse(
        r, Status::NotFound("node " + std::to_string(u) + " not in graph"));
  }
  const std::span<const NodeId> all =
      r.direction == NeighborDirection::kOut ? graph_.OutNeighbors(u)
                                             : graph_.InNeighbors(u);
  const size_t returned = std::min<size_t>(r.limit, all.size());
  QueryResponse resp;
  std::string& j = resp.json;
  j = "{\"type\":\"neighbors\",\"node\":";
  AppendU64(&j, u);
  j += ",\"dir\":\"";
  j += r.direction == NeighborDirection::kOut ? "out" : "in";
  j += "\",\"total\":";
  AppendU64(&j, all.size());
  j += ",\"returned\":";
  AppendU64(&j, returned);
  j += ",\"nodes\":[";
  for (size_t i = 0; i < returned; ++i) {
    if (i > 0) j += ',';
    AppendU64(&j, all[i]);
  }
  j += "],\"degraded\":false}";
  return resp;
}

QueryResponse QueryEngine::DoFingerprint() {
  if (!warm_.fingerprint_ok) {
    Request r;
    r.type = RequestType::kFingerprint;
    return ErrorResponse(
        r, Status::FailedPrecondition("fingerprint unavailable: " +
                                      warm_.fingerprint_error));
  }
  QueryResponse resp;
  std::string& j = resp.json;
  j = "{\"type\":\"fingerprint\",\"density\":";
  j += JsonDouble(warm_.fingerprint.density);
  j += ",\"reciprocity\":";
  j += JsonDouble(warm_.fingerprint.reciprocity);
  j += ",\"clustering\":";
  j += JsonDouble(warm_.fingerprint.clustering);
  j += ",\"assortativity\":";
  j += JsonDouble(warm_.fingerprint.assortativity);
  j += ",\"giant_scc_fraction\":";
  j += JsonDouble(warm_.fingerprint.giant_scc_fraction);
  j += ",\"mean_distance\":";
  j += JsonDouble(warm_.fingerprint.mean_distance);
  j += ",\"powerlaw_alpha\":";
  j += JsonDouble(warm_.fingerprint.powerlaw_alpha);
  j += ",\"attracting_fraction\":";
  j += JsonDouble(warm_.fingerprint.attracting_fraction);
  j += ",\"similarity_to_paper\":";
  j += JsonDouble(warm_.fingerprint_similarity);
  j += ",\"degraded\":false}";
  return resp;
}

std::unique_ptr<QueryEngine::Scratch> QueryEngine::BorrowScratch() {
  {
    std::lock_guard<std::mutex> lock(impl_->scratch_mutex);
    if (!impl_->scratch_pool.empty()) {
      std::unique_ptr<Scratch> s = std::move(impl_->scratch_pool.back());
      impl_->scratch_pool.pop_back();
      return s;
    }
  }
  return std::make_unique<Scratch>(graph_.num_nodes());
}

void QueryEngine::ReturnScratch(std::unique_ptr<Scratch> s) {
  std::lock_guard<std::mutex> lock(impl_->scratch_mutex);
  impl_->scratch_pool.push_back(std::move(s));
}

int QueryEngine::threads() const {
  return static_cast<int>(impl_->workers.size());
}

uint64_t QueryEngine::cache_hits() const {
  return impl_->cache != nullptr ? impl_->cache->hits() : 0;
}

uint64_t QueryEngine::cache_misses() const {
  return impl_->cache != nullptr ? impl_->cache->misses() : 0;
}

void QueryEngine::ClearResultCache() {
  if (impl_->cache != nullptr) impl_->cache->Clear();
}

void QueryEngine::SetTelemetryEnabled(bool on) {
  telemetry_->set_enabled(on);
}

EngineStatsContext QueryEngine::StatsContext() const {
  EngineStatsContext ctx;
  ctx.nodes = graph_.num_nodes();
  ctx.edges = graph_.num_edges();
  ctx.workers = threads();
  ctx.oracle_active = distance_oracle_active();
  ctx.cache_hits = cache_hits();
  ctx.cache_misses = cache_misses();
  ctx.warmup_seconds = warmup_seconds_;
  ctx.warm_from_cache = warm_from_cache_;
  ctx.inflight = impl_->inflight.load(std::memory_order_relaxed);
  return ctx;
}

std::string QueryEngine::AdminResponse(const AdminCommand& cmd) const {
  switch (cmd.kind) {
    case AdminCommand::Kind::kStats:
      return RenderStatsJson(*telemetry_, StatsContext());
    case AdminCommand::Kind::kHealthz:
      return RenderHealthzJson(*telemetry_, StatsContext());
    case AdminCommand::Kind::kRecent:
      return RenderRecentJson(*telemetry_, cmd.n);
    case AdminCommand::Kind::kSlow:
      return RenderSlowJson(*telemetry_, cmd.n);
    case AdminCommand::Kind::kTrace:
      return RenderTraceJson(*telemetry_, cmd.trace_id);
  }
  return "{\"type\":\"error\",\"code\":\"internal\",\"message\":\"unhandled "
         "admin command\"}";
}

}  // namespace serve
}  // namespace elitenet

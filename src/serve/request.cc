#include "serve/request.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/string_utils.h"

namespace elitenet {
namespace serve {

namespace {

// Parses a uint64 token with a range cap, rejecting junk.
bool ParseBounded(std::string_view token, uint64_t max, uint64_t* out) {
  uint64_t v = 0;
  if (!util::ParseUint64(token, &v) || v > max) return false;
  *out = v;
  return true;
}

bool ParseNodeId(std::string_view token, graph::NodeId* out) {
  uint64_t v = 0;
  if (!ParseBounded(token, UINT32_MAX, &v)) return false;
  *out = static_cast<graph::NodeId>(v);
  return true;
}

Status BadRequest(const std::string& what) {
  return Status::InvalidArgument(what);
}

}  // namespace

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kEgoSummary:
      return "ego";
    case RequestType::kTopKRank:
      return "topk";
    case RequestType::kDistance:
      return "dist";
    case RequestType::kNeighbors:
      return "neighbors";
    case RequestType::kFingerprint:
      return "fingerprint";
  }
  return "unknown";
}

Result<Request> ParseRequest(std::string_view line) {
  std::vector<std::string> tokens =
      util::SplitWhitespace(util::StripAsciiWhitespace(line));
  if (tokens.empty()) return BadRequest("empty request");
  Request r;
  // A trailing "@<version>" pin composes with every verb, so it is
  // peeled before the per-verb arity checks.
  if (tokens.size() > 1 && tokens.back().size() > 1 &&
      tokens.back().front() == '@') {
    const std::string pin = tokens.back().substr(1);
    if (!ParseBounded(pin, UINT64_MAX, &r.version) || r.version == 0) {
      return BadRequest("bad version pin: " + tokens.back());
    }
    tokens.pop_back();
  }
  const std::string& verb = tokens[0];

  if (verb == "ego") {
    if (tokens.size() != 2) return BadRequest("usage: ego <node>");
    r.type = RequestType::kEgoSummary;
    if (!ParseNodeId(tokens[1], &r.node)) {
      return BadRequest("bad node id: " + tokens[1]);
    }
    return r;
  }

  if (verb == "topk") {
    if (tokens.size() != 2) return BadRequest("usage: topk <k>");
    r.type = RequestType::kTopKRank;
    uint64_t k = 0;
    if (!ParseBounded(tokens[1], UINT32_MAX, &k) || k == 0) {
      return BadRequest("bad k: " + tokens[1]);
    }
    r.k = static_cast<uint32_t>(k);
    return r;
  }

  if (verb == "dist") {
    if (tokens.size() != 3 && tokens.size() != 4) {
      return BadRequest("usage: dist <src> <dst> [deadline_us]");
    }
    r.type = RequestType::kDistance;
    if (!ParseNodeId(tokens[1], &r.node)) {
      return BadRequest("bad source id: " + tokens[1]);
    }
    if (!ParseNodeId(tokens[2], &r.target)) {
      return BadRequest("bad target id: " + tokens[2]);
    }
    if (tokens.size() == 4 &&
        !ParseBounded(tokens[3], UINT64_MAX, &r.deadline_us)) {
      return BadRequest("bad deadline: " + tokens[3]);
    }
    return r;
  }

  if (verb == "neighbors") {
    if (tokens.size() != 3 && tokens.size() != 4) {
      return BadRequest("usage: neighbors <node> <out|in> [limit]");
    }
    r.type = RequestType::kNeighbors;
    if (!ParseNodeId(tokens[1], &r.node)) {
      return BadRequest("bad node id: " + tokens[1]);
    }
    if (tokens[2] == "out") {
      r.direction = NeighborDirection::kOut;
    } else if (tokens[2] == "in") {
      r.direction = NeighborDirection::kIn;
    } else {
      return BadRequest("direction must be out|in, got: " + tokens[2]);
    }
    if (tokens.size() == 4) {
      uint64_t limit = 0;
      if (!ParseBounded(tokens[3], UINT32_MAX, &limit) || limit == 0) {
        return BadRequest("bad limit: " + tokens[3]);
      }
      r.limit = static_cast<uint32_t>(limit);
    }
    return r;
  }

  if (verb == "fingerprint") {
    if (tokens.size() != 1) return BadRequest("usage: fingerprint");
    r.type = RequestType::kFingerprint;
    return r;
  }

  return BadRequest("unknown request verb: " + verb);
}

std::string CacheKey(const Request& r) {
  char buf[96];
  switch (r.type) {
    case RequestType::kEgoSummary:
      std::snprintf(buf, sizeof(buf), "ego %u", r.node);
      break;
    case RequestType::kTopKRank:
      std::snprintf(buf, sizeof(buf), "topk %u", r.k);
      break;
    case RequestType::kDistance:
      std::snprintf(buf, sizeof(buf), "dist %u %u", r.node, r.target);
      break;
    case RequestType::kNeighbors:
      std::snprintf(buf, sizeof(buf), "neighbors %u %s %u", r.node,
                    r.direction == NeighborDirection::kOut ? "out" : "in",
                    r.limit);
      break;
    case RequestType::kFingerprint:
      std::snprintf(buf, sizeof(buf), "fingerprint");
      break;
  }
  return buf;
}

std::string CanonicalEncoding(const Request& r) {
  std::string s = CacheKey(r);
  if (r.type == RequestType::kDistance && r.deadline_us != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %" PRIu64, r.deadline_us);
    s += buf;
  }
  if (r.version != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " @%" PRIu64, r.version);
    s += buf;
  }
  return s;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace serve
}  // namespace elitenet

// LSM-style delta overlay over an immutable CSR base — the live,
// read-write layer of the serving stack.
//
// The base graph (typically an mmapped ENG2 snapshot) never changes.
// Mutations land in per-node *overlay rows*: for each node touched since
// the last compaction, a copy-on-write row of edge states, one per
// neighbor whose presence ever changed. An edge state is
//
//   { neighbor, base_present, toggles[] }
//
// where `toggles` is the ascending list of versions at which the edge
// flipped. Presence at version V is then
//
//   base_present XOR parity(#toggles <= V)
//
// which is what makes reads *multi-version*: one row answers every
// version since the epoch's base, so a snapshot is just (epoch pointer,
// version number) — no copying, no read locks, O(1) capture.
//
// Concurrency model (single-writer, many-readers, one compactor):
//   * Apply() serializes writers behind a mutex, assigns version
//     numbers (1-based, monotonic), journals to the write-ahead log
//     (serve/mutation_log.h), and publishes each changed row by cloning
//     it and swapping a per-node std::atomic<const OverlayRow*>. Readers
//     therefore see either the old row or the new row, both internally
//     consistent — never a row mid-edit. Retired rows go to the epoch's
//     graveyard and are freed when the epoch dies.
//   * Snapshots pin the epoch through a shared_ptr loaded from an
//     atomic; they never take the writer mutex. Readers never block on
//     writers and vice versa.
//   * Compact() streams the merged (base + overlay @ current version)
//     edge set through graph::WriteStreamedV2 into a fresh ENG2 file,
//     maps it back, and atomically swaps in a new epoch. Mutations that
//     arrive during the merge are recorded and re-applied (at their
//     original versions) to the new epoch before the swap, so no version
//     is lost. The old epoch is *sealed* at the swap: snapshots already
//     holding it keep reading it for versions <= sealed_version, and the
//     mapping + rows are reclaimed when the last such snapshot drains
//     (epoch-based reclamation via shared_ptr).
//
// Determinism: WriteStreamedV2's output is a pure function of the edge
// multiset, so the compacted file is byte-identical to a cold rebuild
// (SaveBinaryV2 over the same logical edge set) — asserted by
// delta_overlay_test and bench_mutations. Replaying the WAL onto the
// same base reproduces the exact version numbering (no-ops consume a
// version and are journaled too).

#ifndef ELITENET_SERVE_DELTA_OVERLAY_H_
#define ELITENET_SERVE_DELTA_OVERLAY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/io.h"
#include "serve/mutation_log.h"
#include "util/status.h"

namespace elitenet {
namespace serve {

/// Presence history of one (node, neighbor) pair inside an overlay row.
struct OverlayEdgeState {
  graph::NodeId neighbor = 0;
  /// Present in the epoch's base CSR (the state at version base_version).
  bool base_present = false;
  /// Versions at which presence flipped, strictly ascending.
  std::vector<uint64_t> toggles;

  bool PresentAt(uint64_t version) const {
    size_t flips = 0;
    for (uint64_t t : toggles) {
      if (t > version) break;
      ++flips;
    }
    return base_present != ((flips & 1) != 0);
  }

  /// Presence at the newest version (writer-side helper).
  bool PresentHead() const {
    return base_present != ((toggles.size() & 1) != 0);
  }
};

/// All overlay state for one node in one direction. Immutable once
/// published; the writer replaces the whole row copy-on-write.
struct OverlayRow {
  /// Sorted ascending by neighbor; merged against the base CSR row.
  std::vector<OverlayEdgeState> entries;
  /// Smallest toggle version in the row — versions below it read the row
  /// as if it did not exist (the node was untouched then).
  uint64_t min_version = 0;

  const OverlayEdgeState* Find(graph::NodeId neighbor) const;
};

/// Point-in-time counters for the #overlay admin verb, compaction
/// triggers, and bench reporting. All "current" values describe the head
/// version; high-water marks are monotonic since process start.
struct OverlayStats {
  uint64_t applied = 0;    ///< versions assigned (follows+unfollows+noops)
  uint64_t follows = 0;    ///< effective follows (state changed)
  uint64_t unfollows = 0;  ///< effective unfollows (state changed)
  uint64_t noops = 0;      ///< accepted mutations that changed nothing
  uint64_t recovered = 0;  ///< mutations replayed from the WAL at startup

  uint64_t live_edges = 0;          ///< edges at the head version
  uint64_t reciprocated_edges = 0;  ///< edges whose reverse also exists
  uint64_t overlay_rows_fwd = 0;    ///< forward rows in the live epoch
  uint64_t overlay_rows_rev = 0;    ///< reverse rows in the live epoch
  uint64_t overlay_entries = 0;     ///< edge states across both directions
  uint64_t tombstones = 0;  ///< base edges currently deleted (fwd side)
  uint64_t overlay_adds = 0;  ///< non-base edges currently present (fwd)
  uint64_t retired_rows = 0;  ///< superseded rows awaiting epoch death

  uint64_t hw_rows = 0;     ///< high-water mark of fwd+rev rows
  uint64_t hw_entries = 0;  ///< high-water mark of overlay_entries

  uint64_t epoch_seq = 0;      ///< 0 = the epoch Create() built
  uint64_t base_version = 0;   ///< versions folded into the epoch's base
  uint64_t base_edges = 0;     ///< edge count of the epoch's base CSR
  uint64_t compactions = 0;    ///< completed compactions
  /// Seconds since the last compaction finished; negative = never.
  double seconds_since_compaction = -1.0;
};

/// What one Apply() did.
struct ApplyOutcome {
  uint64_t version = 0;  ///< the version this mutation was assigned
  bool changed = false;  ///< false: idempotent no-op (still versioned)
};

/// What one compaction did.
struct CompactionStats {
  uint64_t folded_version = 0;  ///< base_version of the new epoch
  uint64_t num_edges = 0;       ///< edges in the compacted snapshot
  uint64_t graph_checksum = 0;  ///< graph::GraphChecksum of the new base
  uint64_t tail_replayed = 0;   ///< mutations applied mid-merge, re-applied
  double seconds = 0.0;
};

class LiveGraph;

/// A consistent read view: one epoch at one version. Cheap to copy
/// (shared_ptr + integer); holding it pins the epoch's base mapping and
/// overlay rows. All methods are lock-free reads, safe concurrently with
/// Apply() and Compact().
class LiveSnapshot {
 public:
  LiveSnapshot() = default;

  bool valid() const { return epoch_ != nullptr; }
  uint64_t version() const { return version_; }
  /// Mutations already folded into this epoch's base CSR.
  uint64_t base_version() const;
  uint64_t epoch_seq() const;
  graph::NodeId num_nodes() const;
  /// The epoch's immutable base (version == base_version of this epoch).
  const graph::DiGraph& base() const;
  /// The warm payload the epoch was published with (may be null).
  const void* warm_payload() const;

  /// True when `u` has overlay history visible at this version, in either
  /// direction — the "touched since last compaction" predicate the
  /// distance oracle's staleness contract keys on.
  bool Touched(graph::NodeId u) const;

  uint32_t OutDegree(graph::NodeId u) const;
  uint32_t InDegree(graph::NodeId u) const;
  bool HasEdge(graph::NodeId u, graph::NodeId v) const;

  /// Merged neighbor lists at this version, ascending — the same order a
  /// compacted CSR row would have.
  void CollectOut(graph::NodeId u, std::vector<graph::NodeId>* out) const;
  void CollectIn(graph::NodeId u, std::vector<graph::NodeId>* out) const;

  /// Streaming merge without materializing: calls fn(neighbor) in
  /// ascending order.
  template <typename Fn>
  void ForEachOut(graph::NodeId u, Fn&& fn) const;
  template <typename Fn>
  void ForEachIn(graph::NodeId u, Fn&& fn) const;

 private:
  friend class LiveGraph;

  struct Epoch;
  LiveSnapshot(std::shared_ptr<const Epoch> epoch, uint64_t version)
      : epoch_(std::move(epoch)), version_(version) {}

  std::shared_ptr<const Epoch> epoch_;
  uint64_t version_ = 0;
};

struct LiveGraphOptions {
  /// Write-ahead log path. Empty disables journaling (traces replayed
  /// through Apply are then the only history). When the file already
  /// exists its records are replayed onto the base at Create() —
  /// crash/restart recovery — and new mutations append after them.
  std::string log_path;
  /// fsync the WAL after every append (crash-durable, syscall-bound).
  bool sync_log = false;
  /// Sorter budget/temp dir for the compaction writer.
  graph::StreamWriteOptions compact_stream;
};

/// The mutable graph: immutable base + overlay + WAL + compactor.
/// Thread-safe as documented per method; one instance per served graph.
class LiveGraph {
 public:
  /// Builds the initial epoch over `base` (epoch 0, base_version 0) and
  /// replays the WAL if options.log_path names an existing log.
  /// `warm_payload` is an opaque per-epoch attachment (the engine hangs
  /// its warm indexes there so base and indexes swap atomically).
  static Result<std::unique_ptr<LiveGraph>> Create(
      graph::DiGraph base, const LiveGraphOptions& options = {},
      std::shared_ptr<const void> warm_payload = nullptr);

  ~LiveGraph();

  LiveGraph(const LiveGraph&) = delete;
  LiveGraph& operator=(const LiveGraph&) = delete;

  /// Applies one mutation: validates ids, assigns the next version,
  /// journals, updates overlay rows + incremental counters. Thread-safe
  /// (internally serialized). InvalidArgument for out-of-range ids or
  /// self-follows — rejected mutations consume no version and are not
  /// journaled.
  Result<ApplyOutcome> Apply(const Mutation& m);

  /// Current-version snapshot. Thread-safe, lock-free, O(1).
  LiveSnapshot Snapshot() const;

  /// Snapshot pinned at `version`. FailedPrecondition when the version
  /// predates the live epoch's base (compacted away) or has not been
  /// applied yet.
  Result<LiveSnapshot> SnapshotAt(uint64_t version) const;

  /// Merges base + overlay at the current version into a fresh ENG2
  /// snapshot at `path` (written to a temp file, renamed into place),
  /// maps it back, optionally builds a warm payload for it, and swaps in
  /// the new epoch. Mutations applied while the merge runs are recorded
  /// and re-applied to the new epoch at their original versions, so
  /// Apply() stays available throughout (blocked only for the brief
  /// swap). Serialized against itself; safe concurrently with Apply()
  /// and snapshots.
  using WarmBuilder =
      std::function<Result<std::shared_ptr<const void>>(const graph::DiGraph&)>;
  Result<CompactionStats> Compact(const std::string& path,
                                  const WarmBuilder& warm_builder = nullptr);

  uint64_t applied_version() const {
    return applied_.load(std::memory_order_acquire);
  }
  /// Versions folded into the live epoch's base (the auto-compaction
  /// trigger reads applied_version() - base_version()).
  uint64_t base_version() const;
  graph::NodeId num_nodes() const { return num_nodes_; }
  /// Edges at the head version (incrementally maintained).
  uint64_t current_edges() const {
    return live_edges_.load(std::memory_order_relaxed);
  }
  /// Edge reciprocity at the head version: reciprocated / edges.
  double current_reciprocity() const;
  /// Mutations replayed from the WAL at Create().
  uint64_t recovered() const { return recovered_; }

  /// Per-node degrees / reciprocated-out-edge counts at the head version
  /// (incrementally maintained, relaxed reads — admin/stats accuracy, not
  /// snapshot consistency).
  uint32_t head_out_degree(graph::NodeId u) const {
    return out_degree_[u].load(std::memory_order_relaxed);
  }
  uint32_t head_in_degree(graph::NodeId u) const {
    return in_degree_[u].load(std::memory_order_relaxed);
  }
  uint32_t head_mutual_degree(graph::NodeId u) const {
    return mutual_degree_[u].load(std::memory_order_relaxed);
  }

  OverlayStats Stats() const;

 private:
  using Epoch = LiveSnapshot::Epoch;

  LiveGraph() = default;

  /// Apply with journaling optional — WAL replay at Create() re-applies
  /// recovered records without re-appending them.
  Result<ApplyOutcome> ApplyInternal(const Mutation& m, bool journal);

  /// Writer-side core shared by Apply and the compaction tail drain:
  /// flips presence in `epoch`'s rows at `version`. Returns whether state
  /// changed. Caller holds apply_mutex_.
  bool ApplyToEpoch(Epoch* epoch, uint64_t version, const Mutation& m);

  /// Copy-on-write publication of one toggled (node -> neighbor) entry.
  static void ToggleRow(Epoch* epoch, std::atomic<const OverlayRow*>& slot,
                        std::atomic<uint64_t>& row_count,
                        graph::NodeId neighbor, bool base_present,
                        uint64_t version);

  /// Head-state presence in `epoch` (writer-side, under apply_mutex_).
  bool HeadHasEdge(const Epoch& epoch, graph::NodeId u,
                   graph::NodeId v) const;

  std::shared_ptr<const Epoch> LoadEpoch() const;

  graph::NodeId num_nodes_ = 0;
  LiveGraphOptions options_;
  uint64_t recovered_ = 0;

  /// The live epoch. Swapped by Compact under apply_mutex_; loaded
  /// lock-free by snapshot capture.
  std::atomic<std::shared_ptr<const Epoch>> epoch_;
  /// The same epoch, mutable — the single writer's view. Accessed only
  /// under apply_mutex_ (readers go through epoch_).
  std::shared_ptr<Epoch> writer_epoch_;
  /// Versions assigned so far; version V is readable once applied_ >= V.
  std::atomic<uint64_t> applied_{0};

  /// Serializes Apply(), the WAL, and the epoch swap.
  mutable std::mutex apply_mutex_;
  std::unique_ptr<MutationLogWriter> wal_;

  /// Compaction tail recording (guarded by apply_mutex_).
  struct TailRecord {
    uint64_t version;
    Mutation mutation;
  };
  bool recording_tail_ = false;
  std::vector<TailRecord> tail_;
  /// Serializes whole compactions against each other.
  std::mutex compact_mutex_;

  // ---- incrementally maintained head-version counters ----
  std::unique_ptr<std::atomic<uint32_t>[]> out_degree_;
  std::unique_ptr<std::atomic<uint32_t>[]> in_degree_;
  std::unique_ptr<std::atomic<uint32_t>[]> mutual_degree_;
  std::atomic<uint64_t> live_edges_{0};
  std::atomic<uint64_t> reciprocated_{0};
  std::atomic<uint64_t> follows_{0};
  std::atomic<uint64_t> unfollows_{0};
  std::atomic<uint64_t> noops_{0};
  std::atomic<uint64_t> tombstones_{0};
  std::atomic<uint64_t> overlay_adds_{0};
  std::atomic<uint64_t> hw_rows_{0};
  std::atomic<uint64_t> hw_entries_{0};
  std::atomic<uint64_t> compactions_{0};
  /// steady_clock time of the last completed compaction, as nanoseconds
  /// since epoch start; 0 = never.
  std::atomic<int64_t> last_compaction_ns_{0};
};

// ---------------------------------------------------------------------------
// Inline read path. The merge walks the base CSR row and the overlay row
// in lockstep; both are ascending, so the union is emitted in ascending
// order — identical to the row a compacted CSR would hold.

struct LiveSnapshot::Epoch {
  graph::DiGraph base;
  uint64_t base_version = 0;
  uint64_t epoch_seq = 0;
  /// Highest version this epoch can serve; UINT64_MAX while live. Set
  /// (under the writer mutex) when a newer epoch replaces this one.
  std::atomic<uint64_t> sealed_version{UINT64_MAX};
  /// Per-node published rows; null = node untouched in this epoch.
  /// Written only by the single writer; read lock-free.
  std::unique_ptr<std::atomic<const OverlayRow*>[]> fwd;
  std::unique_ptr<std::atomic<const OverlayRow*>[]> rev;
  /// Superseded row versions, freed when the epoch dies. Guarded by the
  /// LiveGraph writer mutex; readers never look here.
  std::vector<std::unique_ptr<const OverlayRow>> graveyard;
  /// Opaque engine attachment (warm indexes for this base).
  std::shared_ptr<const void> warm_payload;
  /// Rows/entries tallies for this epoch (writer-maintained, read by
  /// Stats without the writer mutex — hence atomic).
  std::atomic<uint64_t> rows_fwd{0};
  std::atomic<uint64_t> rows_rev{0};
  std::atomic<uint64_t> entries{0};
  std::atomic<uint64_t> retired{0};

  explicit Epoch(graph::DiGraph b)
      : base(std::move(b)),
        fwd(new std::atomic<const OverlayRow*>[base.num_nodes()]()),
        rev(new std::atomic<const OverlayRow*>[base.num_nodes()]()) {}

  ~Epoch() {
    const graph::NodeId n = base.num_nodes();
    for (graph::NodeId u = 0; u < n; ++u) {
      delete fwd[u].load(std::memory_order_relaxed);
      delete rev[u].load(std::memory_order_relaxed);
    }
  }
};

namespace overlay_internal {

template <typename Fn>
void MergeRow(std::span<const graph::NodeId> base_row, const OverlayRow* row,
              uint64_t version, Fn&& fn) {
  if (row == nullptr || row->min_version > version) {
    for (graph::NodeId v : base_row) fn(v);
    return;
  }
  const std::vector<OverlayEdgeState>& es = row->entries;
  size_t i = 0, j = 0;
  while (i < base_row.size() || j < es.size()) {
    if (j >= es.size() ||
        (i < base_row.size() && base_row[i] < es[j].neighbor)) {
      fn(base_row[i]);
      ++i;
    } else if (i >= base_row.size() || es[j].neighbor < base_row[i]) {
      // Overlay-only neighbor (base_present == false).
      if (es[j].PresentAt(version)) fn(es[j].neighbor);
      ++j;
    } else {
      // Base neighbor with overlay history.
      if (es[j].PresentAt(version)) fn(base_row[i]);
      ++i;
      ++j;
    }
  }
}

inline uint32_t MergedDegree(uint32_t base_degree, const OverlayRow* row,
                             uint64_t version) {
  if (row == nullptr || row->min_version > version) return base_degree;
  int64_t d = base_degree;
  for (const OverlayEdgeState& e : row->entries) {
    d += static_cast<int64_t>(e.PresentAt(version)) -
         static_cast<int64_t>(e.base_present);
  }
  return static_cast<uint32_t>(d);
}

}  // namespace overlay_internal

template <typename Fn>
void LiveSnapshot::ForEachOut(graph::NodeId u, Fn&& fn) const {
  overlay_internal::MergeRow(
      epoch_->base.OutNeighbors(u),
      epoch_->fwd[u].load(std::memory_order_acquire), version_,
      std::forward<Fn>(fn));
}

template <typename Fn>
void LiveSnapshot::ForEachIn(graph::NodeId u, Fn&& fn) const {
  overlay_internal::MergeRow(
      epoch_->base.InNeighbors(u),
      epoch_->rev[u].load(std::memory_order_acquire), version_,
      std::forward<Fn>(fn));
}

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_DELTA_OVERLAY_H_

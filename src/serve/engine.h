// QueryEngine — a long-lived in-memory serving layer over one loaded
// graph, in the SNAP tradition of amortizing load/index cost across many
// analyses: pay for the expensive whole-graph computations once at
// startup ("warm indexes"), then answer per-user queries at interactive
// latency from those indexes.
//
// Warm indexes built by Create():
//   * degree tables + overall DegreeStats,
//   * PageRank scores, the full descending rank order, and each node's
//     1-based rank position,
//   * WCC and SCC labelings (component id + size per node),
//   * per-node mutual-edge counts (reciprocity flags),
//   * the graph fingerprint and its similarity to the paper's signature.
//
// Query execution layers three serving mechanics on top:
//   * a sharded LRU result cache keyed by the canonical request encoding
//     (serve/request.h). Only complete, non-degraded, non-error responses
//     are inserted, so a hit is always byte-identical to a recompute;
//   * per-request deadlines (util/deadline.h). Distance queries answer
//     from the warm hub-label oracle (graph/hub_labels.h) by label
//     intersection — exact and microseconds, never degraded. When the
//     oracle is disabled or its construction blew the label budget, they
//     fall back to bidirectional BFS, polling the deadline per level and
//     degrading to the best lower bound found with degraded=true;
//     warm-index queries cost microseconds and always complete;
//   * a thread-pool executor (Submit) for concurrent clients, with
//     in-flight gauge, queue-depth histogram, per-type latency
//     histograms, and cache hit/miss counters via util/metrics.
//
// Determinism: every non-degraded response is a pure function of the
// graph and the request — no timings, thread ids, or cache state leak
// into the bytes — so replaying a request stream produces byte-identical
// responses at any worker-thread count (asserted by bench_serving and
// serve_engine_test).

#ifndef ELITENET_SERVE_ENGINE_H_
#define ELITENET_SERVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/centrality.h"
#include "core/fingerprint.h"
#include "graph/digraph.h"
#include "serve/delta_overlay.h"
#include "serve/mutation_log.h"
#include "serve/request.h"
#include "serve/telemetry.h"
#include "serve/warm_index_cache.h"
#include "util/deadline.h"
#include "util/lru_cache.h"
#include "util/status.h"

namespace elitenet {
namespace serve {

struct EngineOptions {
  /// Executor worker threads (Submit). Execute() always runs on the
  /// calling thread regardless.
  int threads = 1;
  /// Result-cache entries across all shards; 0 disables caching.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  analysis::PageRankOptions pagerank;
  core::FingerprintOptions fingerprint;
  /// Build the hub-label distance oracle at warmup so dist answers by
  /// label intersection instead of traversing. Construction falls back
  /// cleanly (dist reverts to bidirectional BFS) if the pruned labeling
  /// exceeds its size budget — see graph::HubLabelOptions.
  bool distance_oracle = true;
  /// When non-empty, Create() tries to restore the warm indexes from this
  /// `.widx` sidecar (keyed by graph checksum + index config) before
  /// computing them, and writes the sidecar back after a fresh build. A
  /// stale or corrupt sidecar degrades to a rebuild, never an error.
  std::string warm_index_path;
  /// Live telemetry plane (trace ids, flight recorder, latency sketches,
  /// SLO counters). Telemetry observes but never decides, so response
  /// bytes are identical with it enabled, disabled, or sampled.
  TelemetryOptions telemetry;
  /// When non-empty, a background exporter thread writes a JSON snapshot
  /// here (and Prometheus text to `metrics_path + ".prom"`) every
  /// metrics_interval_ms; also turns on util metrics recording.
  std::string metrics_path;
  int metrics_interval_ms = 1000;
};

/// Configuration for a live (mutable) engine — see CreateLive.
struct LiveEngineOptions {
  /// Write-ahead log for applied mutations; replayed at CreateLive when
  /// the file exists. Empty disables journaling.
  std::string log_path;
  /// fsync the WAL after every append.
  bool sync_log = false;
  /// Where compaction writes the fresh ENG2 snapshot (a ".widx" warm
  /// sidecar rides next to it). Required for CompactNow / auto
  /// compaction.
  std::string compact_path;
  /// Sorter budget / temp dir for the compaction writer.
  graph::StreamWriteOptions compact_stream;
  /// Auto-compaction trigger: the background compactor folds the overlay
  /// once this many versions sit above the epoch base. 0 = manual
  /// CompactNow() only (no compactor thread).
  uint64_t compact_after = 0;
};

struct QueryResponse {
  /// Single-line JSON. Errors render as {"type":"error",...}.
  std::string json;
  bool ok = true;
  /// True when a deadline cut the computation short; json carries the
  /// best bound found. Never cached.
  bool degraded = false;
  /// True when served from the result cache (diagnostic only — the bytes
  /// are identical either way, so this flag never appears in json).
  bool cache_hit = false;
};

class QueryEngine {
 public:
  /// Builds every warm index (the expensive part — O(iterations * m) for
  /// PageRank, O(n + m) per component labeling) and starts the executor.
  /// Fails on an empty graph or a PageRank that cannot run; a failed
  /// fingerprint (e.g. degenerate degree tail) is tolerated and surfaces
  /// as an error response to fingerprint queries only.
  static Result<std::unique_ptr<QueryEngine>> Create(
      graph::DiGraph g, const EngineOptions& options = {});

  /// Like Create, but the graph accepts live follow/unfollow mutations
  /// through Apply(): the loaded graph becomes the immutable base of a
  /// LiveGraph delta overlay, every request captures an MVCC snapshot at
  /// admission, and responses carry `"version"` (the snapshot's graph
  /// version) and `"as_of"` (the base version the expensive warm indexes
  /// were computed at — the staleness bound for PageRank/component/rank
  /// fields). Cheap facts (degrees, neighbor lists, mutual counts, 2-hop
  /// reach) are exact at the snapshot version; dist falls back from the
  /// hub-label oracle to overlay-aware bidirectional BFS when either
  /// endpoint was touched since the base was built.
  static Result<std::unique_ptr<QueryEngine>> CreateLive(
      graph::DiGraph g, const LiveEngineOptions& live,
      const EngineOptions& options = {});

  /// Stops the executor and joins its workers (and, for live engines, the
  /// background compactor).
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Synchronously answers `r` on the calling thread. Thread-safe.
  QueryResponse Execute(const Request& r);

  /// Parses one protocol line and answers it; parse failures become
  /// well-formed error responses (never a crash or empty line).
  QueryResponse ExecuteLine(std::string_view line);

  /// Enqueues `r` for the worker pool. The request's deadline starts
  /// counting at submission, so time spent queued burns budget — the
  /// behaviour a latency SLO wants.
  std::future<QueryResponse> Submit(const Request& r);

  const graph::DiGraph& graph() const { return graph_; }
  int threads() const;

  /// True for engines built by CreateLive.
  bool is_live() const { return live_ != nullptr; }

  /// Applies one follow/unfollow on a live engine (total order; safe from
  /// any thread — the overlay serializes writers). FailedPrecondition on
  /// static engines. May wake the background compactor.
  Result<ApplyOutcome> Apply(const Mutation& m);

  /// Folds the overlay into a fresh ENG2 at live.compact_path (plus a
  /// ".widx" warm sidecar) and swaps it in as the new base epoch.
  /// FailedPrecondition on static engines or when no compact_path was
  /// configured.
  Result<CompactionStats> CompactNow();

  /// Current overlay counters (zero-valued on static engines).
  OverlayStats overlay_stats() const;

  /// Last applied graph version (0 on static engines).
  uint64_t applied_version() const;

  /// Captures the current MVCC snapshot (tests/benches; invalid() on
  /// static engines).
  LiveSnapshot live_snapshot() const;

  /// Result-cache tallies since startup (also exported as the
  /// serve.cache.hit / serve.cache.miss metrics counters).
  uint64_t cache_hits() const;
  uint64_t cache_misses() const;

  /// Drops every result-cache entry (tallies are preserved). Lets
  /// benchmarks replay cold-cache traffic against one long-lived engine
  /// instead of rebuilding it per run.
  void ClearResultCache();

  /// Flips the telemetry plane's live master switch (responses are
  /// byte-identical either way). An A/B overhead measurement toggles
  /// this on one engine so both arms share the same heap layout.
  void SetTelemetryEnabled(bool on);

  /// Seconds spent building (or restoring) warm indexes in Create().
  double warmup_seconds() const { return warmup_seconds_; }

  /// True when the warm indexes were restored from the `.widx` sidecar
  /// instead of computed (diagnostic; the served bytes are identical).
  bool warm_index_from_cache() const { return warm_from_cache_; }

  /// The warm-index bundle (immutable after Create). Static engines only:
  /// a live engine hangs its bundle off the current epoch (so compaction
  /// can swap base and indexes atomically) and this returns an empty one.
  const WarmIndexes& warm_indexes() const { return warm_; }

  /// True when dist queries are answered by the hub-label oracle; false
  /// when it is disabled by options or construction blew its budget (in
  /// which case dist uses the bidirectional-BFS fallback). Live engines
  /// consult the current epoch's bundle.
  bool distance_oracle_active() const;

  /// The engine's telemetry plane (always present; inert when
  /// options.telemetry.enabled is false).
  const Telemetry& telemetry() const { return *telemetry_; }

  /// Engine-side facts for the admin/stats renderers.
  EngineStatsContext StatsContext() const;

  /// Answers one parsed admin command as a single JSON line.
  std::string AdminResponse(const AdminCommand& cmd) const;

 private:
  QueryEngine(graph::DiGraph g, const EngineOptions& options);

  /// Load-or-build: consult the sidecar when configured, else compute
  /// every index and (best-effort) persist it for the next cold start.
  Status Warmup();
  Status BuildWarmIndexes();
  void StartWorkers();
  void WorkerLoop();
  void CompactorLoop();

  /// What one request reads: the warm bundle and (live engines only) the
  /// MVCC snapshot it was admitted against.
  struct QueryCtx {
    const WarmIndexes* warm = nullptr;
    const LiveSnapshot* snap = nullptr;  ///< Null on static engines.
  };

  /// The snapshot a request executes against (honours "@<version>" pins).
  /// Live engines only.
  Result<LiveSnapshot> ResolveSnapshot(const Request& r) const;

  /// Computes (never consults the cache) — the miss path.
  QueryResponse Compute(const Request& r, const util::Deadline& deadline,
                        const QueryCtx& ctx);

  QueryResponse DoEgoSummary(const Request& r, const QueryCtx& ctx);
  QueryResponse DoTopKRank(const Request& r, const QueryCtx& ctx);
  QueryResponse DoDistance(const Request& r, const util::Deadline& deadline,
                           const QueryCtx& ctx);
  QueryResponse DoNeighbors(const Request& r, const QueryCtx& ctx);
  QueryResponse DoFingerprint(const QueryCtx& ctx);

  /// Executor-side facts about a request that exist before execution.
  struct RequestMeta {
    uint64_t seq = 0;  ///< Pre-assigned sequence number (0 = assign now).
    uint64_t queue_wait_us = 0;
    bool queued = false;
    /// Live engines resolve the MVCC snapshot at submission (Submit), so
    /// time spent queued never moves the version a request observes.
    bool snap_resolved = false;
    Status snap_status;
    LiveSnapshot snap;
  };

  QueryResponse ExecuteWithDeadline(const Request& r,
                                    const util::Deadline& deadline,
                                    const RequestMeta& meta);

  struct Scratch;
  /// Borrows a scratch (two arenas) from the pool, creating one on first
  /// use; returned by ReturnScratch.
  std::unique_ptr<Scratch> BorrowScratch();
  void ReturnScratch(std::unique_ptr<Scratch> s);

  const graph::DiGraph graph_;
  const EngineOptions options_;

  // Warm indexes (immutable after Warmup; read concurrently). Restored
  // from the sidecar or computed — either way the same bytes, which is
  // what keeps responses identical across load paths.
  WarmIndexes warm_;
  bool warm_from_cache_ = false;
  double warmup_seconds_ = 0.0;

  struct Impl;  // executor queue, scratch pool, cache
  std::unique_ptr<Impl> impl_;

  // Live-mutation plane (CreateLive only; null on static engines).
  std::unique_ptr<LiveGraph> live_;
  LiveEngineOptions live_options_;
  std::mutex compactor_mutex_;
  std::condition_variable compactor_cv_;
  bool compactor_stop_ = false;  ///< Guarded by compactor_mutex_.
  std::thread compactor_;

  std::unique_ptr<Telemetry> telemetry_;
  // Declared (and reset in ~QueryEngine) after everything it reads.
  std::unique_ptr<TelemetryExporter> exporter_;
};

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_ENGINE_H_

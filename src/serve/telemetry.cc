#include "serve/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "util/string_utils.h"

namespace elitenet {
namespace serve {

namespace {

void AppendU64(std::string* out, uint64_t v) { *out += std::to_string(v); }

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

uint64_t TraceIdFor(uint64_t seq) {
  // splitmix64 finalizer: bijective on uint64, so ids never collide and
  // low bits are well mixed (the sampling modulus uses them).
  uint64_t z = seq + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return buf;
}

bool ParseTraceId(std::string_view s, uint64_t* out) {
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

// ---------------------------------------------------------------------------
// FlightRecorder

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(std::max<size_t>(1, capacity))),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {}

void FlightRecorder::Push(RequestRecord record) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<size_t>(ticket) & mask_];
  std::lock_guard<std::mutex> lock(slot.mutex);
  // A slower writer can hold a ticket for an already-lapped slot; never
  // let it overwrite a newer record.
  if (slot.ticket > ticket + 1) return;
  slot.ticket = ticket + 1;
  slot.record = std::move(record);
}

std::vector<RequestRecord> FlightRecorder::Recent(size_t n) const {
  std::vector<std::pair<uint64_t, RequestRecord>> found;
  found.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.ticket > 0) found.emplace_back(slot.ticket, slot.record);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (found.size() > n) found.resize(n);
  std::vector<RequestRecord> out;
  out.reserve(found.size());
  for (auto& f : found) out.push_back(std::move(f.second));
  return out;
}

bool FlightRecorder::FindTrace(uint64_t trace_id, RequestRecord* out) const {
  uint64_t best_ticket = 0;
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.ticket > best_ticket && slot.record.trace_id == trace_id) {
      best_ticket = slot.ticket;
      *out = slot.record;
    }
  }
  return best_ticket > 0;
}

// ---------------------------------------------------------------------------
// Telemetry

Telemetry::Telemetry(const TelemetryOptions& options)
    : options_(options),
      enabled_(options.enabled),
      recent_(options.recorder_capacity),
      slow_(options.slow_capacity) {}

void Telemetry::Record(RequestRecord record) {
  const size_t type = static_cast<size_t>(record.request.type);
  if (type >= kNumRequestTypes) return;
  AtomicSlo& slo = per_type_[type];
  slo.requests.fetch_add(1, std::memory_order_relaxed);
  if (!record.ok) slo.errors.fetch_add(1, std::memory_order_relaxed);
  if (record.degraded) slo.degraded.fetch_add(1, std::memory_order_relaxed);
  if (record.deadline_missed) {
    slo.deadline_miss.fetch_add(1, std::memory_order_relaxed);
  }
  if (record.cache_hit) slo.cache_hits.fetch_add(1, std::memory_order_relaxed);
  if (record.oracle_fallback) {
    oracle_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_[type].Observe(record.latency_us);
  if (record.queued) queue_wait_.Observe(record.queue_wait_us);

  const bool slow = record.latency_us >= options_.slow_us ||
                    record.deadline_missed;
  if (slow) slow_.Push(record);  // copy: the record also goes to recent_
  recent_.Push(std::move(record));
}

SloCounters Telemetry::type_counters(RequestType type) const {
  const AtomicSlo& slo = per_type_[static_cast<size_t>(type)];
  SloCounters out;
  out.requests = slo.requests.load(std::memory_order_relaxed);
  out.errors = slo.errors.load(std::memory_order_relaxed);
  out.degraded = slo.degraded.load(std::memory_order_relaxed);
  out.deadline_miss = slo.deadline_miss.load(std::memory_order_relaxed);
  out.cache_hits = slo.cache_hits.load(std::memory_order_relaxed);
  return out;
}

SloCounters Telemetry::totals() const {
  SloCounters out;
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    const SloCounters c = type_counters(static_cast<RequestType>(i));
    out.requests += c.requests;
    out.errors += c.errors;
    out.degraded += c.degraded;
    out.deadline_miss += c.deadline_miss;
    out.cache_hits += c.cache_hits;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Admin parsing

Result<AdminCommand> ParseAdminLine(std::string_view line) {
  std::string_view s = util::StripAsciiWhitespace(line);
  if (s.empty() || s.front() != '#') {
    return Status::NotFound("not an admin line");
  }
  s.remove_prefix(1);
  s = util::StripAsciiWhitespace(s);

  // Split into verb + rest on first whitespace run.
  size_t sp = s.find_first_of(" \t");
  const std::string_view verb = s.substr(0, sp);
  std::string_view rest =
      sp == std::string_view::npos ? std::string_view{} : s.substr(sp);
  rest = util::StripAsciiWhitespace(rest);

  AdminCommand cmd;
  if (verb == "stats" || verb == "healthz" || verb == "version" ||
      verb == "overlay") {
    cmd.kind = verb == "stats"     ? AdminCommand::Kind::kStats
               : verb == "healthz" ? AdminCommand::Kind::kHealthz
               : verb == "version" ? AdminCommand::Kind::kVersion
                                   : AdminCommand::Kind::kOverlay;
    if (!rest.empty()) {
      return Status::InvalidArgument("#" + std::string(verb) +
                                     " takes no arguments");
    }
    return cmd;
  }
  if (verb == "recent" || verb == "slow") {
    cmd.kind = verb == "recent" ? AdminCommand::Kind::kRecent
                                : AdminCommand::Kind::kSlow;
    if (!rest.empty()) {
      if (rest.find_first_not_of("0123456789") != std::string_view::npos) {
        return Status::InvalidArgument("#" + std::string(verb) +
                                       " count must be a non-negative "
                                       "integer, got \"" +
                                       std::string(rest) + "\"");
      }
      errno = 0;
      const unsigned long long n = std::strtoull(std::string(rest).c_str(),
                                                 nullptr, 10);
      if (errno != 0) {
        return Status::InvalidArgument("#" + std::string(verb) +
                                       " count out of range");
      }
      cmd.n = static_cast<size_t>(n);
    }
    return cmd;
  }
  if (verb == "trace") {
    cmd.kind = AdminCommand::Kind::kTrace;
    if (rest.empty() || !ParseTraceId(rest, &cmd.trace_id)) {
      return Status::InvalidArgument(
          "#trace needs a 16-hex-digit trace id, got \"" + std::string(rest) +
          "\"");
    }
    return cmd;
  }
  // Anything else after '#' is a comment, exactly as before this command
  // channel existed.
  return Status::NotFound("not an admin verb: " + std::string(verb));
}

// ---------------------------------------------------------------------------
// Rendering

namespace {

void AppendSloJson(std::string* j, const SloCounters& c) {
  *j += "{\"requests\":";
  AppendU64(j, c.requests);
  *j += ",\"errors\":";
  AppendU64(j, c.errors);
  *j += ",\"degraded\":";
  AppendU64(j, c.degraded);
  *j += ",\"deadline_miss\":";
  AppendU64(j, c.deadline_miss);
  *j += ",\"cache_hits\":";
  AppendU64(j, c.cache_hits);
  *j += '}';
}

void AppendSketchJson(std::string* j, const util::QuantileSketch& s) {
  char buf[64];
  *j += "{\"count\":";
  AppendU64(j, s.count());
  *j += ",\"max_us\":";
  AppendU64(j, s.MaxEstimate());
  std::snprintf(buf, sizeof(buf),
                ",\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f}",
                s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99));
  *j += buf;
}

}  // namespace

std::string RenderRecordJson(const RequestRecord& r) {
  std::string j = "{\"trace_id\":\"";
  j += TraceIdHex(r.trace_id);
  j += "\",\"seq\":";
  AppendU64(&j, r.seq);
  j += ",\"request\":\"";
  j += JsonEscape(CanonicalEncoding(r.request));
  j += "\",\"type\":\"";
  j += RequestTypeName(r.request.type);
  j += "\",\"ok\":";
  AppendBool(&j, r.ok);
  j += ",\"degraded\":";
  AppendBool(&j, r.degraded);
  j += ",\"cache_hit\":";
  AppendBool(&j, r.cache_hit);
  j += ",\"queued\":";
  AppendBool(&j, r.queued);
  j += ",\"latency_us\":";
  AppendU64(&j, r.latency_us);
  if (r.queued) {
    j += ",\"queue_wait_us\":";
    AppendU64(&j, r.queue_wait_us);
  }
  j += ",\"deadline_slack_us\":";
  if (r.deadline_slack_us == UINT64_MAX) {
    j += "null";
  } else {
    AppendU64(&j, r.deadline_slack_us);
  }
  j += ",\"deadline_missed\":";
  AppendBool(&j, r.deadline_missed);
  j += ",\"sampled\":";
  AppendBool(&j, r.sampled);
  if (r.sampled) {
    j += ",\"spans\":[";
    for (size_t i = 0; i < r.spans.size(); ++i) {
      const util::CapturedSpan& s = r.spans[i];
      if (i > 0) j += ',';
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"start_us\":%.1f,\"dur_us\":%.1f,"
                    "\"depth\":%d}",
                    s.name == nullptr ? "?" : s.name,
                    static_cast<double>(s.start_ns) / 1e3,
                    static_cast<double>(s.duration_ns) / 1e3,
                    static_cast<int>(s.depth));
      j += buf;
    }
    j += "],\"spans_truncated\":";
    AppendBool(&j, r.spans_truncated);
  }
  j += '}';
  return j;
}

std::string RenderStatsJson(const Telemetry& t, const EngineStatsContext& ctx) {
  std::string j = "{\"type\":\"stats\",\"graph\":{\"nodes\":";
  AppendU64(&j, ctx.nodes);
  j += ",\"edges\":";
  AppendU64(&j, ctx.edges);
  j += "},\"workers\":";
  AppendU64(&j, static_cast<uint64_t>(ctx.workers));
  j += ",\"inflight\":";
  j += std::to_string(ctx.inflight);
  j += ",\"oracle_active\":";
  AppendBool(&j, ctx.oracle_active);
  j += ",\"warmup_seconds\":";
  j += JsonDouble(ctx.warmup_seconds);
  j += ",\"warm_from_cache\":";
  AppendBool(&j, ctx.warm_from_cache);
  j += ",\"cache\":{\"hits\":";
  AppendU64(&j, ctx.cache_hits);
  j += ",\"misses\":";
  AppendU64(&j, ctx.cache_misses);
  j += "},\"totals\":";
  AppendSloJson(&j, t.totals());
  j += ",\"oracle_fallbacks\":";
  AppendU64(&j, t.oracle_fallbacks());
  j += ",\"per_type\":{";
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    const RequestType type = static_cast<RequestType>(i);
    if (i > 0) j += ',';
    j += '"';
    j += RequestTypeName(type);
    j += "\":{\"slo\":";
    AppendSloJson(&j, t.type_counters(type));
    j += ",\"latency\":";
    AppendSketchJson(&j, t.latency_sketch(type));
    j += '}';
  }
  j += '}';
  if (ctx.live) {
    // The exporter embeds this snapshot, so the mutation plane rides in
    // every scrape without a second admin round-trip.
    j += ",\"live\":{\"version\":";
    AppendU64(&j, ctx.overlay.applied);
    j += ",\"base_version\":";
    AppendU64(&j, ctx.overlay.base_version);
    j += ",\"epoch\":";
    AppendU64(&j, ctx.overlay.epoch_seq);
    j += ",\"overlay_rows\":";
    AppendU64(&j, ctx.overlay.overlay_rows_fwd + ctx.overlay.overlay_rows_rev);
    j += ",\"overlay_entries\":";
    AppendU64(&j, ctx.overlay.overlay_entries);
    j += ",\"tombstones\":";
    AppendU64(&j, ctx.overlay.tombstones);
    j += ",\"compactions\":";
    AppendU64(&j, ctx.overlay.compactions);
    j += ",\"seconds_since_compaction\":";
    j += JsonDouble(ctx.overlay.seconds_since_compaction);
    j += '}';
  }
  j += ",\"queue_wait\":";
  AppendSketchJson(&j, t.queue_wait_sketch());
  j += ",\"recorder\":{\"capacity\":";
  AppendU64(&j, t.recent().capacity());
  j += ",\"total\":";
  AppendU64(&j, t.recent().total());
  j += ",\"slow_capacity\":";
  AppendU64(&j, t.slow().capacity());
  j += ",\"slow_total\":";
  AppendU64(&j, t.slow().total());
  j += "},\"sampling\":{\"every\":";
  AppendU64(&j, t.options().sample_every);
  j += ",\"slow_us\":";
  AppendU64(&j, t.options().slow_us);
  j += "}}";
  return j;
}

std::string RenderHealthzJson(const Telemetry& t,
                              const EngineStatsContext& ctx) {
  const SloCounters totals = t.totals();
  std::string j = "{\"type\":\"healthz\",\"ok\":true,\"workers\":";
  AppendU64(&j, static_cast<uint64_t>(ctx.workers));
  j += ",\"inflight\":";
  j += std::to_string(ctx.inflight);
  j += ",\"requests\":";
  AppendU64(&j, totals.requests);
  j += ",\"errors\":";
  AppendU64(&j, totals.errors);
  j += ",\"degraded\":";
  AppendU64(&j, totals.degraded);
  j += ",\"deadline_miss\":";
  AppendU64(&j, totals.deadline_miss);
  j += '}';
  return j;
}

std::string RenderVersionJson(const EngineStatsContext& ctx) {
  std::string j = "{\"type\":\"version\",\"live\":";
  AppendBool(&j, ctx.live);
  j += ",\"version\":";
  AppendU64(&j, ctx.overlay.applied);
  j += ",\"base_version\":";
  AppendU64(&j, ctx.overlay.base_version);
  j += ",\"epoch\":";
  AppendU64(&j, ctx.overlay.epoch_seq);
  j += ",\"nodes\":";
  AppendU64(&j, ctx.nodes);
  j += ",\"edges\":";
  AppendU64(&j, ctx.edges);
  j += ",\"base_edges\":";
  AppendU64(&j, ctx.live ? ctx.overlay.base_edges : ctx.edges);
  j += ",\"compactions\":";
  AppendU64(&j, ctx.overlay.compactions);
  j += ",\"seconds_since_compaction\":";
  j += JsonDouble(ctx.overlay.seconds_since_compaction);
  j += ",\"recovered\":";
  AppendU64(&j, ctx.overlay.recovered);
  j += '}';
  return j;
}

std::string RenderOverlayJson(const EngineStatsContext& ctx) {
  const OverlayStats& o = ctx.overlay;
  std::string j = "{\"type\":\"overlay\",\"live\":";
  AppendBool(&j, ctx.live);
  j += ",\"applied\":";
  AppendU64(&j, o.applied);
  j += ",\"follows\":";
  AppendU64(&j, o.follows);
  j += ",\"unfollows\":";
  AppendU64(&j, o.unfollows);
  j += ",\"noops\":";
  AppendU64(&j, o.noops);
  j += ",\"edges\":";
  AppendU64(&j, ctx.live ? o.live_edges : ctx.edges);
  j += ",\"reciprocity\":";
  j += JsonDouble(o.live_edges > 0 ? static_cast<double>(o.reciprocated_edges) /
                                         static_cast<double>(o.live_edges)
                                   : 0.0);
  j += ",\"rows_fwd\":";
  AppendU64(&j, o.overlay_rows_fwd);
  j += ",\"rows_rev\":";
  AppendU64(&j, o.overlay_rows_rev);
  j += ",\"entries\":";
  AppendU64(&j, o.overlay_entries);
  j += ",\"tombstones\":";
  AppendU64(&j, o.tombstones);
  j += ",\"overlay_adds\":";
  AppendU64(&j, o.overlay_adds);
  j += ",\"retired_rows\":";
  AppendU64(&j, o.retired_rows);
  j += ",\"hw_rows\":";
  AppendU64(&j, o.hw_rows);
  j += ",\"hw_entries\":";
  AppendU64(&j, o.hw_entries);
  j += ",\"seconds_since_compaction\":";
  j += JsonDouble(o.seconds_since_compaction);
  j += '}';
  return j;
}

namespace {

std::string RenderRecordListJson(const char* type, uint64_t total,
                                 const std::vector<RequestRecord>& records) {
  std::string j = "{\"type\":\"";
  j += type;
  j += "\",\"total\":";
  AppendU64(&j, total);
  j += ",\"returned\":";
  AppendU64(&j, records.size());
  j += ",\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) j += ',';
    j += RenderRecordJson(records[i]);
  }
  j += "]}";
  return j;
}

}  // namespace

std::string RenderRecentJson(const Telemetry& t, size_t n) {
  return RenderRecordListJson("recent", t.recent().total(),
                              t.recent().Recent(n));
}

std::string RenderSlowJson(const Telemetry& t, size_t n) {
  return RenderRecordListJson("slow", t.slow().total(), t.slow().Recent(n));
}

std::string RenderTraceJson(const Telemetry& t, uint64_t trace_id) {
  RequestRecord record;
  bool found = t.recent().FindTrace(trace_id, &record);
  if (!found) found = t.slow().FindTrace(trace_id, &record);
  std::string j = "{\"type\":\"trace\",\"trace_id\":\"";
  j += TraceIdHex(trace_id);
  j += "\",\"found\":";
  AppendBool(&j, found);
  if (found) {
    j += ",\"record\":";
    j += RenderRecordJson(record);
  }
  j += '}';
  return j;
}

std::string RenderSummaryText(const Telemetry& t) {
  std::string out = "serve telemetry summary:\n";
  char buf[160];
  const SloCounters totals = t.totals();
  std::snprintf(buf, sizeof(buf),
                "  requests=%llu errors=%llu degraded=%llu deadline_miss=%llu"
                " cache_hits=%llu oracle_fallbacks=%llu\n",
                static_cast<unsigned long long>(totals.requests),
                static_cast<unsigned long long>(totals.errors),
                static_cast<unsigned long long>(totals.degraded),
                static_cast<unsigned long long>(totals.deadline_miss),
                static_cast<unsigned long long>(totals.cache_hits),
                static_cast<unsigned long long>(t.oracle_fallbacks()));
  out += buf;
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    const RequestType type = static_cast<RequestType>(i);
    const util::QuantileSketch& s = t.latency_sketch(type);
    if (s.count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  %-12s n=%llu p50=%.0fus p95=%.0fus p99=%.0fus "
                  "max=%lluus\n",
                  RequestTypeName(type),
                  static_cast<unsigned long long>(s.count()), s.Quantile(0.5),
                  s.Quantile(0.95), s.Quantile(0.99),
                  static_cast<unsigned long long>(s.MaxEstimate()));
    out += buf;
  }
  if (t.queue_wait_sketch().count() > 0) {
    const util::QuantileSketch& q = t.queue_wait_sketch();
    std::snprintf(buf, sizeof(buf),
                  "  queue_wait   n=%llu p50=%.0fus p95=%.0fus p99=%.0fus\n",
                  static_cast<unsigned long long>(q.count()), q.Quantile(0.5),
                  q.Quantile(0.95), q.Quantile(0.99));
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exporter

namespace {

// Atomic whole-file replace: write to a sibling temp path, then rename.
// Scrapers tailing `path` never observe a torn snapshot.
Status WriteFileAtomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics output: " + tmp);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to metrics output: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename metrics output into place: " + path);
  }
  return Status::OK();
}

std::string RenderPrometheusText(const Telemetry& t,
                                 const EngineStatsContext& ctx) {
  std::string out = util::MetricsRegistry::Global().Snapshot()
                        .ToPrometheusText();
  char buf[160];
  auto counter = [&](const char* name, uint64_t v) {
    std::snprintf(buf, sizeof(buf),
                  "# TYPE %s counter\n%s %llu\n", name, name,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  const SloCounters totals = t.totals();
  counter("elitenet_serve_slo_requests_total", totals.requests);
  counter("elitenet_serve_slo_errors_total", totals.errors);
  counter("elitenet_serve_slo_degraded_total", totals.degraded);
  counter("elitenet_serve_slo_deadline_miss_total", totals.deadline_miss);
  counter("elitenet_serve_slo_oracle_fallback_total", t.oracle_fallbacks());
  std::snprintf(buf, sizeof(buf),
                "# TYPE elitenet_serve_inflight gauge\n"
                "elitenet_serve_inflight %lld\n",
                static_cast<long long>(ctx.inflight));
  out += buf;
  out += "# TYPE elitenet_serve_latency_us summary\n";
  for (size_t i = 0; i < kNumRequestTypes; ++i) {
    const RequestType type = static_cast<RequestType>(i);
    const util::QuantileSketch& s = t.latency_sketch(type);
    for (double q : {0.5, 0.95, 0.99}) {
      std::snprintf(buf, sizeof(buf),
                    "elitenet_serve_latency_us{rtype=\"%s\",quantile=\"%g\"}"
                    " %.1f\n",
                    RequestTypeName(type), q, s.Quantile(q));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "elitenet_serve_latency_us_count{rtype=\"%s\"} %llu\n",
                  RequestTypeName(type),
                  static_cast<unsigned long long>(s.count()));
    out += buf;
  }
  return out;
}

}  // namespace

TelemetryExporter::TelemetryExporter(
    const Telemetry* telemetry, std::string path, int interval_ms,
    std::function<EngineStatsContext()> stats_fn)
    : telemetry_(telemetry),
      path_(std::move(path)),
      interval_ms_(std::max(1, interval_ms)),
      stats_fn_(std::move(stats_fn)),
      thread_([this] { Loop(); }) {}

TelemetryExporter::~TelemetryExporter() { Stop(); }

void TelemetryExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final snapshot so a clean shutdown always leaves the latest counters
  // on disk.
  WriteOnce(static_cast<double>(interval_ms_) / 1e3);
}

void TelemetryExporter::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                     [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    WriteOnce(static_cast<double>(interval_ms_) / 1e3);
    lock.lock();
  }
}

void TelemetryExporter::WriteOnce(double interval_seconds) {
  const EngineStatsContext ctx = stats_fn_ ? stats_fn_() : EngineStatsContext{};
  const SloCounters totals = telemetry_->totals();
  // Burn rates over the snapshot interval: the per-second consumption of
  // each SLO budget, the signal an admission controller acts on.
  const double dt = interval_seconds > 0 ? interval_seconds : 1.0;
  auto rate = [&](uint64_t now, uint64_t then) {
    return static_cast<double>(now - then) / dt;
  };
  std::string j = "{\n\"stats\": ";
  j += RenderStatsJson(*telemetry_, ctx);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\n\"burn_rates\": {\"interval_s\": %g, \"requests_per_s\": "
                "%.2f, \"errors_per_s\": %.2f, \"degraded_per_s\": %.2f, "
                "\"deadline_miss_per_s\": %.2f}",
                dt, rate(totals.requests, last_totals_.requests),
                rate(totals.errors, last_totals_.errors),
                rate(totals.degraded, last_totals_.degraded),
                rate(totals.deadline_miss, last_totals_.deadline_miss));
  j += buf;
  last_totals_ = totals;
  j += ",\n\"metrics\": ";
  j += util::MetricsRegistry::Global().Snapshot().ToJson();
  j += "}\n";
  if (WriteFileAtomic(path_, j).ok() &&
      WriteFileAtomic(path_ + ".prom",
                      RenderPrometheusText(*telemetry_, ctx))
          .ok()) {
    writes_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace serve
}  // namespace elitenet

#include "serve/warm_index_cache.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

#include "util/mmap_file.h"

namespace elitenet {
namespace serve {

namespace {

constexpr char kMagic[4] = {'W', 'I', 'D', 'X'};
// v2: four distance-oracle (hub label) sections appended after
// fingerprint_error. v1 readers see version 2 and bail with NotSupported;
// this reader does the same for v1 files — both directions of skew
// degrade to a rebuild.
constexpr uint32_t kVersion = 2;
constexpr uint64_t kAlignment = 64;
constexpr uint64_t kFnvBasis = 0xCBF29CE484222325ULL;
constexpr uint32_t kNumSections = 14;
/// Bumped whenever the scalar block layout or section set changes, so
/// sidecars written by an older layout fail the config hash instead of
/// being misread.
constexpr uint64_t kFormatGeneration = 2;

enum SectionId : uint32_t {
  kScalars = 0,
  kMutualDegree = 1,
  kWccLabel = 2,
  kWccSizes = 3,
  kSccLabel = 4,
  kSccSizes = 5,
  kPagerank = 6,
  kRankOrder = 7,
  kRankOf = 8,
  kFingerprintError = 9,
  kHubOutOffsets = 10,
  kHubOutEntries = 11,
  kHubInOffsets = 12,
  kHubInEntries = 13,
};

constexpr const char* kSectionNames[kNumSections] = {
    "scalars",     "mutual_degree",   "wcc_label",       "wcc_sizes",
    "scc_label",   "scc_sizes",       "pagerank",        "rank_order",
    "rank_of",     "fingerprint_error", "hub_out_offsets", "hub_out_entries",
    "hub_in_offsets", "hub_in_entries",
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

struct HeaderV1 {
  char magic[4];
  uint32_t version;
  uint64_t graph_checksum;
  uint64_t config_hash;
  uint64_t num_nodes;
  uint32_t section_count;
  uint8_t padding[28];
};
static_assert(sizeof(HeaderV1) == 64, "WIDX header is 64 bytes");

struct SectionEntry {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;
  uint64_t length;
  uint64_t checksum;
};
static_assert(sizeof(SectionEntry) == 32, "WIDX section entry is 32 bytes");

uint64_t AlignUp(uint64_t v) { return (v + kAlignment - 1) & ~(kAlignment - 1); }

/// Fixed-order u64 slot encoding for the non-array state: explicit
/// append/read calls instead of memcpy'ing structs, so padding and field
/// order can never leak into the format.
class ScalarWriter {
 public:
  void U64(uint64_t v) { slots_.push_back(v); }
  void F64(double v) { slots_.push_back(std::bit_cast<uint64_t>(v)); }
  const std::vector<uint64_t>& slots() const { return slots_; }

 private:
  std::vector<uint64_t> slots_;
};

class ScalarReader {
 public:
  explicit ScalarReader(std::span<const uint64_t> slots) : slots_(slots) {}
  uint64_t U64() {
    if (next_ >= slots_.size()) {
      ok_ = false;
      return 0;
    }
    return slots_[next_++];
  }
  double F64() { return std::bit_cast<double>(U64()); }
  /// True iff every read so far had a slot and none remain unread.
  bool Exhausted() const { return ok_ && next_ == slots_.size(); }

 private:
  std::span<const uint64_t> slots_;
  size_t next_ = 0;
  bool ok_ = true;
};

std::vector<uint64_t> EncodeScalars(const WarmIndexes& w) {
  ScalarWriter s;
  s.U64(w.degree_stats.min_out_degree);
  s.U64(w.degree_stats.max_out_degree);
  s.U64(w.degree_stats.argmax_out_degree);
  s.F64(w.degree_stats.avg_out_degree);
  s.U64(w.degree_stats.min_in_degree);
  s.U64(w.degree_stats.max_in_degree);
  s.U64(w.degree_stats.argmax_in_degree);
  s.F64(w.degree_stats.avg_in_degree);
  s.U64(w.degree_stats.isolated_nodes);
  s.U64(w.degree_stats.sink_nodes);
  s.U64(w.degree_stats.source_nodes);
  s.F64(w.degree_stats.density);
  s.U64(w.reciprocity.total_edges);
  s.U64(w.reciprocity.reciprocated_edges);
  s.U64(w.reciprocity.mutual_pairs);
  s.F64(w.reciprocity.rate);
  s.U64(w.wcc.num_components);
  s.U64(w.scc.num_components);
  s.F64(w.fingerprint.density);
  s.F64(w.fingerprint.reciprocity);
  s.F64(w.fingerprint.clustering);
  s.F64(w.fingerprint.assortativity);
  s.F64(w.fingerprint.giant_scc_fraction);
  s.F64(w.fingerprint.mean_distance);
  s.F64(w.fingerprint.powerlaw_alpha);
  s.F64(w.fingerprint.attracting_fraction);
  s.U64(w.fingerprint_ok ? 1 : 0);
  s.F64(w.fingerprint_similarity);
  return s.slots();
}

Status DecodeScalars(std::span<const uint64_t> slots, WarmIndexes* w) {
  ScalarReader s(slots);
  w->degree_stats.min_out_degree = static_cast<uint32_t>(s.U64());
  w->degree_stats.max_out_degree = static_cast<uint32_t>(s.U64());
  w->degree_stats.argmax_out_degree = static_cast<graph::NodeId>(s.U64());
  w->degree_stats.avg_out_degree = s.F64();
  w->degree_stats.min_in_degree = static_cast<uint32_t>(s.U64());
  w->degree_stats.max_in_degree = static_cast<uint32_t>(s.U64());
  w->degree_stats.argmax_in_degree = static_cast<graph::NodeId>(s.U64());
  w->degree_stats.avg_in_degree = s.F64();
  w->degree_stats.isolated_nodes = s.U64();
  w->degree_stats.sink_nodes = s.U64();
  w->degree_stats.source_nodes = s.U64();
  w->degree_stats.density = s.F64();
  w->reciprocity.total_edges = s.U64();
  w->reciprocity.reciprocated_edges = s.U64();
  w->reciprocity.mutual_pairs = s.U64();
  w->reciprocity.rate = s.F64();
  w->wcc.num_components = static_cast<uint32_t>(s.U64());
  w->scc.num_components = static_cast<uint32_t>(s.U64());
  w->fingerprint.density = s.F64();
  w->fingerprint.reciprocity = s.F64();
  w->fingerprint.clustering = s.F64();
  w->fingerprint.assortativity = s.F64();
  w->fingerprint.giant_scc_fraction = s.F64();
  w->fingerprint.mean_distance = s.F64();
  w->fingerprint.powerlaw_alpha = s.F64();
  w->fingerprint.attracting_fraction = s.F64();
  w->fingerprint_ok = s.U64() != 0;
  w->fingerprint_similarity = s.F64();
  if (!s.Exhausted()) {
    return Status::Corruption("warm-index scalar block has the wrong size");
  }
  return Status::OK();
}

template <typename T>
Status CopySection(const uint8_t* base, const SectionEntry& s,
                   std::vector<T>* out) {
  if (s.length % sizeof(T) != 0) {
    return Status::Corruption("warm-index section length not a multiple of "
                              "element size");
  }
  out->resize(s.length / sizeof(T));
  if (s.length > 0) std::memcpy(out->data(), base + s.offset, s.length);
  return Status::OK();
}

}  // namespace

uint64_t WarmConfigHash(const analysis::PageRankOptions& pagerank,
                        const core::FingerprintOptions& fingerprint,
                        bool distance_oracle) {
  const uint64_t fields[] = {
      kFormatGeneration,
      std::bit_cast<uint64_t>(pagerank.damping),
      std::bit_cast<uint64_t>(pagerank.tolerance),
      static_cast<uint64_t>(pagerank.max_iterations),
      fingerprint.distance_sources,
      fingerprint.clustering_samples,
      fingerprint.seed,
      distance_oracle ? uint64_t{1} : uint64_t{0},
  };
  return Fnv1a(fields, sizeof(fields), kFnvBasis);
}

std::string WarmIndexPathFor(const std::string& graph_path) {
  std::string base = graph_path;
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  return base + ".widx";
}

Status SaveWarmIndexes(const std::string& path, const WarmIndexKey& key,
                       const WarmIndexes& w) {
  const std::vector<uint64_t> scalars = EncodeScalars(w);

  struct SectionData {
    const void* data;
    uint64_t length;
  };
  const SectionData sections[kNumSections] = {
      {scalars.data(), scalars.size() * sizeof(uint64_t)},
      {w.mutual_degree.data(), w.mutual_degree.size() * sizeof(uint32_t)},
      {w.wcc.label.data(), w.wcc.label.size() * sizeof(uint32_t)},
      {w.wcc.sizes.data(), w.wcc.sizes.size() * sizeof(uint64_t)},
      {w.scc.label.data(), w.scc.label.size() * sizeof(uint32_t)},
      {w.scc.sizes.data(), w.scc.sizes.size() * sizeof(uint64_t)},
      {w.pagerank.data(), w.pagerank.size() * sizeof(double)},
      {w.rank_order.data(), w.rank_order.size() * sizeof(graph::NodeId)},
      {w.rank_of.data(), w.rank_of.size() * sizeof(uint32_t)},
      {w.fingerprint_error.data(), w.fingerprint_error.size()},
      {w.hub_labels.out_offsets().data(),
       w.hub_labels.out_offsets().size() * sizeof(graph::EdgeIdx)},
      {w.hub_labels.out_entries().data(),
       w.hub_labels.out_entries().size() * sizeof(graph::HubLabelEntry)},
      {w.hub_labels.in_offsets().data(),
       w.hub_labels.in_offsets().size() * sizeof(graph::EdgeIdx)},
      {w.hub_labels.in_entries().data(),
       w.hub_labels.in_entries().size() * sizeof(graph::HubLabelEntry)},
  };

  HeaderV1 header = {};
  std::memcpy(header.magic, kMagic, 4);
  header.version = kVersion;
  header.graph_checksum = key.graph_checksum;
  header.config_hash = key.config_hash;
  header.num_nodes = w.pagerank.size();
  header.section_count = kNumSections;

  SectionEntry table[kNumSections] = {};
  uint64_t offset =
      AlignUp(sizeof(HeaderV1) + kNumSections * sizeof(SectionEntry));
  for (uint32_t i = 0; i < kNumSections; ++i) {
    table[i].id = i;
    table[i].offset = offset;
    table[i].length = sections[i].length;
    table[i].checksum = Fnv1a(sections[i].data, sections[i].length, kFnvBasis);
    offset = AlignUp(offset + sections[i].length);
  }

  // Temp-file + rename: a reader racing this writer sees either the old
  // sidecar or the new one, never a torn mix.
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::IoError("cannot open for writing: " + tmp);
    if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1 ||
        std::fwrite(table, sizeof(SectionEntry), kNumSections, f.get()) !=
            kNumSections) {
      return Status::IoError("header write failed: " + tmp);
    }
    uint64_t written = sizeof(header) + kNumSections * sizeof(SectionEntry);
    const char zeros[kAlignment] = {};
    for (uint32_t i = 0; i < kNumSections; ++i) {
      const uint64_t pad = table[i].offset - written;
      if (pad > 0 && std::fwrite(zeros, 1, pad, f.get()) != pad) {
        return Status::IoError("padding write failed: " + tmp);
      }
      if (sections[i].length > 0 &&
          std::fwrite(sections[i].data, 1, sections[i].length, f.get()) !=
              sections[i].length) {
        return Status::IoError("section write failed: " + tmp);
      }
      written = table[i].offset + sections[i].length;
    }
    if (std::fflush(f.get()) != 0) {
      return Status::IoError("flush failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + path);
  }
  return Status::OK();
}

Result<WarmIndexes> LoadWarmIndexes(const std::string& path,
                                    const WarmIndexKey& key,
                                    graph::NodeId expected_nodes) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotSupported(
        "warm-index sidecars are little-endian; this host is not");
  }
  EN_ASSIGN_OR_RETURN(util::MmapFile mapped, util::MmapFile::Open(path));
  const uint8_t* base = mapped.data();
  const uint64_t size = mapped.size();

  if (size < sizeof(HeaderV1)) {
    return Status::Corruption("truncated warm-index header: " + path);
  }
  HeaderV1 header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, 4) != 0) {
    return Status::Corruption("bad warm-index magic: " + path);
  }
  if (header.version != kVersion) {
    return Status::NotSupported("unsupported warm-index version " +
                                std::to_string(header.version));
  }
  if (header.graph_checksum != key.graph_checksum ||
      header.config_hash != key.config_hash) {
    return Status::FailedPrecondition(
        "stale warm-index key (graph or index config changed): " + path);
  }
  const uint64_t n = header.num_nodes;
  if (n != expected_nodes) {
    return Status::FailedPrecondition("warm-index node count mismatch: " +
                                      path);
  }
  if (header.section_count != kNumSections) {
    return Status::Corruption("unexpected warm-index section count");
  }
  const uint64_t table_end =
      sizeof(HeaderV1) + kNumSections * sizeof(SectionEntry);
  if (size < table_end) {
    return Status::Corruption("truncated warm-index section table: " + path);
  }
  SectionEntry table[kNumSections];
  std::memcpy(table, base + sizeof(HeaderV1), sizeof(table));
  for (uint32_t i = 0; i < kNumSections; ++i) {
    const SectionEntry& s = table[i];
    if (s.id != i) {
      return Status::Corruption("warm-index section table out of order");
    }
    if (s.offset % kAlignment != 0) {
      return Status::Corruption("misaligned warm-index section");
    }
    if (s.length > size || s.offset > size - s.length) {
      return Status::Corruption("warm-index section exceeds file: " + path);
    }
    if (Fnv1a(base + s.offset, s.length, kFnvBasis) != s.checksum) {
      return Status::Corruption("warm-index section checksum mismatch: " +
                                path);
    }
  }

  WarmIndexes w;
  if (table[kScalars].length % sizeof(uint64_t) != 0) {
    return Status::Corruption("warm-index scalar block misaligned");
  }
  std::vector<uint64_t> scalars(table[kScalars].length / sizeof(uint64_t));
  if (!scalars.empty()) {
    std::memcpy(scalars.data(), base + table[kScalars].offset,
                table[kScalars].length);
  }
  EN_RETURN_IF_ERROR(DecodeScalars(scalars, &w));

  EN_RETURN_IF_ERROR(CopySection(base, table[kMutualDegree],
                                 &w.mutual_degree));
  EN_RETURN_IF_ERROR(CopySection(base, table[kWccLabel], &w.wcc.label));
  EN_RETURN_IF_ERROR(CopySection(base, table[kWccSizes], &w.wcc.sizes));
  EN_RETURN_IF_ERROR(CopySection(base, table[kSccLabel], &w.scc.label));
  EN_RETURN_IF_ERROR(CopySection(base, table[kSccSizes], &w.scc.sizes));
  EN_RETURN_IF_ERROR(CopySection(base, table[kPagerank], &w.pagerank));
  EN_RETURN_IF_ERROR(CopySection(base, table[kRankOrder], &w.rank_order));
  EN_RETURN_IF_ERROR(CopySection(base, table[kRankOf], &w.rank_of));
  w.fingerprint_error.assign(
      reinterpret_cast<const char*>(base + table[kFingerprintError].offset),
      table[kFingerprintError].length);

  std::vector<graph::EdgeIdx> hub_out_offsets;
  std::vector<graph::HubLabelEntry> hub_out_entries;
  std::vector<graph::EdgeIdx> hub_in_offsets;
  std::vector<graph::HubLabelEntry> hub_in_entries;
  EN_RETURN_IF_ERROR(
      CopySection(base, table[kHubOutOffsets], &hub_out_offsets));
  EN_RETURN_IF_ERROR(
      CopySection(base, table[kHubOutEntries], &hub_out_entries));
  EN_RETURN_IF_ERROR(CopySection(base, table[kHubInOffsets], &hub_in_offsets));
  EN_RETURN_IF_ERROR(CopySection(base, table[kHubInEntries], &hub_in_entries));
  w.hub_labels = graph::HubLabels::FromArrays(
      std::move(hub_out_offsets), std::move(hub_out_entries),
      std::move(hub_in_offsets), std::move(hub_in_entries));
  EN_RETURN_IF_ERROR(graph::ValidateHubLabels(
      w.hub_labels, static_cast<graph::NodeId>(n)));

  // Internal consistency: every per-node array must cover exactly n nodes
  // and every stored id must be in range, so query-time lookups can index
  // without bounds checks — exactly the guarantees a fresh build gives.
  if (w.mutual_degree.size() != n || w.wcc.label.size() != n ||
      w.scc.label.size() != n || w.pagerank.size() != n ||
      w.rank_order.size() != n || w.rank_of.size() != n) {
    return Status::Corruption("warm-index arrays disagree with node count");
  }
  if (w.wcc.sizes.size() != w.wcc.num_components ||
      w.scc.sizes.size() != w.scc.num_components) {
    return Status::Corruption("warm-index component sizes disagree with "
                              "component count");
  }
  for (uint32_t label : w.wcc.label) {
    if (label >= w.wcc.num_components) {
      return Status::Corruption("warm-index WCC label out of range");
    }
  }
  for (uint32_t label : w.scc.label) {
    if (label >= w.scc.num_components) {
      return Status::Corruption("warm-index SCC label out of range");
    }
  }
  for (graph::NodeId u : w.rank_order) {
    if (u >= n) return Status::Corruption("warm-index rank order out of range");
  }
  for (uint32_t r : w.rank_of) {
    if (r < 1 || r > n) {
      return Status::Corruption("warm-index rank position out of range");
    }
  }
  return w;
}

Result<std::vector<WarmIndexSectionInfo>> DescribeWarmIndexes(
    const std::string& path) {
  EN_ASSIGN_OR_RETURN(util::MmapFile mapped, util::MmapFile::Open(path));
  const uint8_t* base = mapped.data();
  const uint64_t size = mapped.size();

  if (size < sizeof(HeaderV1)) {
    return Status::Corruption("truncated warm-index header: " + path);
  }
  HeaderV1 header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, 4) != 0) {
    return Status::Corruption("bad warm-index magic: " + path);
  }
  if (header.version != kVersion) {
    return Status::NotSupported("unsupported warm-index version " +
                                std::to_string(header.version));
  }
  if (header.section_count != kNumSections ||
      size < sizeof(HeaderV1) + kNumSections * sizeof(SectionEntry)) {
    return Status::Corruption("truncated warm-index section table: " + path);
  }
  SectionEntry table[kNumSections];
  std::memcpy(table, base + sizeof(HeaderV1), sizeof(table));
  std::vector<WarmIndexSectionInfo> sections;
  sections.reserve(kNumSections);
  for (uint32_t i = 0; i < kNumSections; ++i) {
    if (table[i].id != i) {
      return Status::Corruption("warm-index section table out of order");
    }
    sections.push_back({kSectionNames[i], table[i].length});
  }
  return sections;
}

}  // namespace serve
}  // namespace elitenet

#include "serve/mutation_log.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace elitenet {
namespace serve {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'U', 'T'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 16;
constexpr size_t kRecordBytes = 16;

}  // namespace

uint32_t MutationRecordChecksum(uint64_t index, const Mutation& m) {
  // FNV-1a (32-bit) over the record position and payload fields, each in
  // little-endian byte order. Including `index` makes records
  // position-dependent: a valid record copied to another offset fails.
  uint32_t h = 2166136261u;
  auto mix = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 16777619u;
    }
  };
  mix(&index, sizeof(index));
  const uint32_t op = static_cast<uint32_t>(m.op);
  mix(&op, sizeof(op));
  mix(&m.src, sizeof(m.src));
  mix(&m.dst, sizeof(m.dst));
  return h;
}

namespace {

void EncodeRecord(uint64_t index, const Mutation& m, unsigned char out[16]) {
  const uint32_t fields[4] = {static_cast<uint32_t>(m.op), m.src, m.dst,
                              MutationRecordChecksum(index, m)};
  std::memcpy(out, fields, sizeof(fields));
}

Status DecodeRecord(uint64_t index, const unsigned char in[16],
                    Mutation* out) {
  uint32_t fields[4];
  std::memcpy(fields, in, sizeof(fields));
  if (fields[0] > static_cast<uint32_t>(MutationOp::kUnfollow)) {
    return Status::Corruption("mutation log record " + std::to_string(index) +
                              ": unknown op " + std::to_string(fields[0]));
  }
  Mutation m;
  m.op = static_cast<MutationOp>(fields[0]);
  m.src = fields[1];
  m.dst = fields[2];
  if (fields[3] != MutationRecordChecksum(index, m)) {
    return Status::Corruption("mutation log record " + std::to_string(index) +
                              ": checksum mismatch");
  }
  *out = m;
  return Status::OK();
}

Status WriteHeader(std::FILE* f) {
  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  std::memcpy(header + 4, &kFormatVersion, sizeof(kFormatVersion));
  if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header)) {
    return Status::IoError("mutation log: header write failed");
  }
  return Status::OK();
}

/// Validates the header and that the payload is whole records; returns
/// the record count.
Result<uint64_t> ValidateShape(std::FILE* f, const std::string& path) {
  unsigned char header[kHeaderBytes];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    return Status::Corruption("mutation log " + path + ": truncated header");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("mutation log " + path + ": bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, header + 4, sizeof(version));
  if (version != kFormatVersion) {
    return Status::NotSupported("mutation log " + path + ": format version " +
                                std::to_string(version));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("mutation log " + path + ": seek failed");
  }
  const long end = std::ftell(f);
  if (end < 0) return Status::IoError("mutation log " + path + ": tell failed");
  const uint64_t payload = static_cast<uint64_t>(end) - kHeaderBytes;
  if (payload % kRecordBytes != 0) {
    return Status::Corruption("mutation log " + path +
                              ": truncated mid-record (" +
                              std::to_string(payload % kRecordBytes) +
                              " trailing bytes)");
  }
  return payload / kRecordBytes;
}

}  // namespace

MutationLogWriter::MutationLogWriter(std::string path, std::FILE* f,
                                     uint64_t next_index, bool sync_each)
    : path_(std::move(path)),
      file_(f),
      next_index_(next_index),
      sync_each_(sync_each) {}

MutationLogWriter::~MutationLogWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Result<std::unique_ptr<MutationLogWriter>> MutationLogWriter::Open(
    const std::string& path, bool sync_each) {
  // Resume path: an existing file must be a valid log; appends continue
  // its record numbering so checksums stay position-correct.
  if (std::FILE* existing = std::fopen(path.c_str(), "rb")) {
    auto count = ValidateShape(existing, path);
    std::fclose(existing);
    if (!count.ok()) return count.status();
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
      return Status::IoError("mutation log " + path + ": " +
                             std::strerror(errno));
    }
    return std::unique_ptr<MutationLogWriter>(
        new MutationLogWriter(path, f, *count, sync_each));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("mutation log " + path + ": " +
                           std::strerror(errno));
  }
  const Status header = WriteHeader(f);
  if (!header.ok()) {
    std::fclose(f);
    return header;
  }
  return std::unique_ptr<MutationLogWriter>(
      new MutationLogWriter(path, f, 0, sync_each));
}

Status MutationLogWriter::Append(const Mutation& m) {
  unsigned char record[kRecordBytes];
  EncodeRecord(next_index_, m, record);
  if (std::fwrite(record, 1, sizeof(record), file_) != sizeof(record)) {
    return Status::IoError("mutation log " + path_ + ": append failed");
  }
  ++next_index_;
  if (sync_each_) return Flush();
  return Status::OK();
}

Status MutationLogWriter::Flush() {
  if (std::fflush(file_) != 0) {
    return Status::IoError("mutation log " + path_ + ": flush failed");
  }
#ifndef _WIN32
  if (sync_each_ && ::fsync(fileno(file_)) != 0) {
    return Status::IoError("mutation log " + path_ + ": fsync failed");
  }
#endif
  return Status::OK();
}

Result<std::vector<Mutation>> ReadMutationLog(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("mutation log " + path + ": " +
                           std::strerror(errno));
  }
  auto count = ValidateShape(f, path);
  if (!count.ok()) {
    std::fclose(f);
    return count.status();
  }
  if (std::fseek(f, kHeaderBytes, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("mutation log " + path + ": seek failed");
  }
  std::vector<Mutation> out;
  out.reserve(static_cast<size_t>(*count));
  unsigned char record[kRecordBytes];
  for (uint64_t i = 0; i < *count; ++i) {
    if (std::fread(record, 1, sizeof(record), f) != sizeof(record)) {
      std::fclose(f);
      return Status::IoError("mutation log " + path + ": short read");
    }
    Mutation m;
    const Status decoded = DecodeRecord(i, record, &m);
    if (!decoded.ok()) {
      std::fclose(f);
      return decoded;
    }
    out.push_back(m);
  }
  std::fclose(f);
  return out;
}

Status WriteMutationLog(const std::string& path,
                        const std::vector<Mutation>& mutations) {
  std::remove(path.c_str());
  auto writer = MutationLogWriter::Open(path);
  if (!writer.ok()) return writer.status();
  for (const Mutation& m : mutations) {
    EN_RETURN_IF_ERROR((*writer)->Append(m));
  }
  return (*writer)->Flush();
}

}  // namespace serve
}  // namespace elitenet

// Persisted warm indexes — the serving layer's answer to checkpoint
// loading. QueryEngine::Create pays O(iterations * m) to build PageRank,
// component labelings, mutual-edge counts, and the fingerprint before the
// first query. All of it is a pure function of (graph bytes, index
// config), so it can be computed once, written to a `<graph>.widx`
// sidecar, and on the next cold start mapped + validated instead of
// recomputed.
//
// Invalidation key: the pair (GraphChecksum of the CSR arrays,
// WarmConfigHash of every option that feeds an index). A key mismatch is
// not corruption — it means "these indexes describe some other graph or
// config" — so loads fail with FailedPrecondition and the engine rebuilds
// and rewrites. Structural damage (truncation, checksum mismatch, version
// skew) also degrades to a rebuild, never a crash.
//
// File layout ("WIDX", little-endian, 64-byte-aligned sections, same
// conventions as the ENG2 graph snapshot in graph/io.h):
//   header (64 B): magic "WIDX" | u32 version | u64 graph_checksum |
//                  u64 config_hash | u64 num_nodes | u32 section_count |
//                  padding
//   section table: entries { u32 id | u32 reserved | u64 offset |
//                  u64 length | u64 fnv1a_checksum }
//   sections:      scalars | mutual_degree | wcc_label | wcc_sizes |
//                  scc_label | scc_sizes | pagerank | rank_order |
//                  rank_of | fingerprint_error | hub_out_offsets |
//                  hub_out_entries | hub_in_offsets | hub_in_entries
//
// Version history: v1 had the first ten sections; v2 added the four
// distance-oracle (hub label) sections. Readers reject other versions
// with NotSupported — the engine treats that exactly like corruption and
// rebuilds, so version skew in either direction degrades cleanly.

#ifndef ELITENET_SERVE_WARM_INDEX_CACHE_H_
#define ELITENET_SERVE_WARM_INDEX_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/centrality.h"
#include "analysis/components.h"
#include "analysis/degree.h"
#include "analysis/reciprocity.h"
#include "core/fingerprint.h"
#include "graph/digraph.h"
#include "graph/hub_labels.h"
#include "util/status.h"

namespace elitenet {
namespace serve {

/// Every index QueryEngine builds at warmup, gathered so the whole set
/// can be persisted and restored as one unit.
struct WarmIndexes {
  analysis::DegreeStats degree_stats;
  analysis::ReciprocityStats reciprocity;
  /// Per-node count of reciprocated out-edges.
  std::vector<uint32_t> mutual_degree;
  analysis::ComponentLabeling wcc;
  analysis::ComponentLabeling scc;
  std::vector<double> pagerank;
  /// All nodes by descending PageRank, ties by id.
  std::vector<graph::NodeId> rank_order;
  /// node -> 1-based rank position.
  std::vector<uint32_t> rank_of;
  bool fingerprint_ok = false;
  core::GraphFingerprint fingerprint;
  double fingerprint_similarity = 0.0;
  std::string fingerprint_error;
  /// The dist query's 2-hop distance oracle. empty() means "not built" —
  /// either the oracle is disabled by config or construction blew its
  /// budget — and the engine answers dist with bidirectional BFS instead.
  graph::HubLabels hub_labels;
};

/// Identity of a warm-index set: which graph bytes and which index
/// configuration produced it.
struct WarmIndexKey {
  uint64_t graph_checksum = 0;
  uint64_t config_hash = 0;
};

/// FNV-1a over every option that changes an index's value, plus an
/// internal format-generation constant — bump-on-change lives in the
/// implementation, so stale sidecars from older layouts never validate.
uint64_t WarmConfigHash(const analysis::PageRankOptions& pagerank,
                        const core::FingerprintOptions& fingerprint,
                        bool distance_oracle);

/// Conventional sidecar path for a graph file: "<path>.widx" (trailing
/// slashes stripped first, so dataset dirs get "<dir>.widx").
std::string WarmIndexPathFor(const std::string& graph_path);

/// Writes the sidecar atomically (temp file + rename): a concurrent
/// reader sees the old bytes or the new bytes, never a torn file.
Status SaveWarmIndexes(const std::string& path, const WarmIndexKey& key,
                       const WarmIndexes& indexes);

/// Maps the sidecar, validates magic/version/key/checksums and internal
/// consistency against `expected_nodes`, and returns the restored
/// indexes. FailedPrecondition for a key that does not match (stale
/// sidecar), Corruption for structural damage — callers treat any error
/// as "rebuild".
Result<WarmIndexes> LoadWarmIndexes(const std::string& path,
                                    const WarmIndexKey& key,
                                    graph::NodeId expected_nodes);

/// One row of the sidecar inventory DescribeWarmIndexes returns.
struct WarmIndexSectionInfo {
  std::string name;
  uint64_t bytes = 0;
};

/// Reads just the header and section table of an existing sidecar and
/// returns its per-section sizes in file order (the `elitenet_cli warmup`
/// report). Validates structure but not the key — an inventory of a stale
/// sidecar is still an inventory.
Result<std::vector<WarmIndexSectionInfo>> DescribeWarmIndexes(
    const std::string& path);

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_WARM_INDEX_CACHE_H_

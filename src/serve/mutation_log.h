// Durable append-only mutation log — the write-ahead journal and the
// on-disk trace format for live graph mutations (serve/delta_overlay.h).
//
// A mutation is one follow or unfollow of a directed edge. The log gives
// the live graph its replay determinism: mutations are appended in apply
// order, so re-reading the file and re-applying every record onto the
// same base snapshot reconstructs the exact overlay state (including the
// version numbering — no-ops consume a version too, and they are logged).
//
// File layout ("EMUT", little-endian):
//   header (16 B): magic "EMUT" | u32 format_version=1 | u64 reserved=0
//   records:       16 B each { u32 op | u32 src | u32 dst | u32 checksum }
//
// The checksum is FNV-1a over (record index, op, src, dst), so a record
// spliced in from another position — not just a flipped byte — fails
// validation. There is no trailing count or footer: the record count is
// (file size - 16) / 16, which is what makes the format append-only. A
// file whose tail is not a whole record (torn final write, truncation
// mid-record) reads back as kCorruption, never as a silently shorter
// trace.
//
// The same format serves two roles:
//   * WAL: LiveGraph appends through MutationLogWriter as it applies;
//   * trace: gen::GenerateMutationTrace writes a churn workload with
//     WriteMutationLog, and `elitenet_cli mutate` / bench_mutations
//     replay it with ReadMutationLog.

#ifndef ELITENET_SERVE_MUTATION_LOG_H_
#define ELITENET_SERVE_MUTATION_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace serve {

enum class MutationOp : uint8_t {
  kFollow = 0,    ///< add edge src -> dst (no-op if present)
  kUnfollow = 1,  ///< remove edge src -> dst (no-op if absent)
};

/// One totally-ordered follow/unfollow. Idempotent by construction: the
/// overlay applies it as "set presence to (op == kFollow)", so replaying
/// a prefix twice cannot diverge.
struct Mutation {
  MutationOp op = MutationOp::kFollow;
  graph::NodeId src = 0;
  graph::NodeId dst = 0;

  bool operator==(const Mutation&) const = default;
};

/// Checksum of the record at 0-based position `index` in a log.
uint32_t MutationRecordChecksum(uint64_t index, const Mutation& m);

/// Appends mutations to a log file, creating it (with header) when absent
/// and validating header + record alignment when resuming an existing
/// one. Not thread-safe; LiveGraph serializes appends behind its writer
/// mutex.
class MutationLogWriter {
 public:
  /// `sync_each` additionally fsyncs after every Append — crash-durable
  /// but syscall-bound; the default buffers through stdio and makes the
  /// bytes durable at Flush()/destruction.
  static Result<std::unique_ptr<MutationLogWriter>> Open(
      const std::string& path, bool sync_each = false);

  /// Flushes and closes (errors are swallowed; call Flush() to observe
  /// them).
  ~MutationLogWriter();

  MutationLogWriter(const MutationLogWriter&) = delete;
  MutationLogWriter& operator=(const MutationLogWriter&) = delete;

  Status Append(const Mutation& m);
  Status Flush();

  /// Records in the file, counting any it was reopened over.
  uint64_t size() const { return next_index_; }
  const std::string& path() const { return path_; }

 private:
  MutationLogWriter(std::string path, std::FILE* f, uint64_t next_index,
                    bool sync_each);

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t next_index_ = 0;
  bool sync_each_ = false;
};

/// Reads a whole log/trace. IoError when the file cannot be opened;
/// Corruption for a bad magic/version, a size that is not header + whole
/// records (truncation mid-record), or any per-record checksum mismatch.
Result<std::vector<Mutation>> ReadMutationLog(const std::string& path);

/// Writes a complete log in one shot (header + records + flush) — the
/// trace-file writer. Overwrites `path`.
Status WriteMutationLog(const std::string& path,
                        const std::vector<Mutation>& mutations);

}  // namespace serve
}  // namespace elitenet

#endif  // ELITENET_SERVE_MUTATION_LOG_H_

#include "serve/delta_overlay.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "util/ext_sort.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace elitenet {
namespace serve {

using graph::DiGraph;
using graph::NodeId;

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const OverlayEdgeState* OverlayRow::Find(NodeId neighbor) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), neighbor,
      [](const OverlayEdgeState& e, NodeId v) { return e.neighbor < v; });
  if (it == entries.end() || it->neighbor != neighbor) return nullptr;
  return &*it;
}

// ---------------------------------------------------------------------------
// LiveSnapshot

uint64_t LiveSnapshot::base_version() const { return epoch_->base_version; }

uint64_t LiveSnapshot::epoch_seq() const { return epoch_->epoch_seq; }

NodeId LiveSnapshot::num_nodes() const { return epoch_->base.num_nodes(); }

const DiGraph& LiveSnapshot::base() const { return epoch_->base; }

const void* LiveSnapshot::warm_payload() const {
  return epoch_->warm_payload.get();
}

bool LiveSnapshot::Touched(NodeId u) const {
  const OverlayRow* f = epoch_->fwd[u].load(std::memory_order_acquire);
  if (f != nullptr && f->min_version <= version_) return true;
  const OverlayRow* r = epoch_->rev[u].load(std::memory_order_acquire);
  return r != nullptr && r->min_version <= version_;
}

uint32_t LiveSnapshot::OutDegree(NodeId u) const {
  return overlay_internal::MergedDegree(
      epoch_->base.OutDegree(u),
      epoch_->fwd[u].load(std::memory_order_acquire), version_);
}

uint32_t LiveSnapshot::InDegree(NodeId u) const {
  return overlay_internal::MergedDegree(
      epoch_->base.InDegree(u),
      epoch_->rev[u].load(std::memory_order_acquire), version_);
}

bool LiveSnapshot::HasEdge(NodeId u, NodeId v) const {
  const OverlayRow* row = epoch_->fwd[u].load(std::memory_order_acquire);
  if (row != nullptr && row->min_version <= version_) {
    if (const OverlayEdgeState* e = row->Find(v)) return e->PresentAt(version_);
  }
  return epoch_->base.HasEdge(u, v);
}

void LiveSnapshot::CollectOut(NodeId u, std::vector<NodeId>* out) const {
  out->clear();
  ForEachOut(u, [out](NodeId v) { out->push_back(v); });
}

void LiveSnapshot::CollectIn(NodeId u, std::vector<NodeId>* out) const {
  out->clear();
  ForEachIn(u, [out](NodeId v) { out->push_back(v); });
}

// ---------------------------------------------------------------------------
// LiveGraph

LiveGraph::~LiveGraph() = default;

Result<std::unique_ptr<LiveGraph>> LiveGraph::Create(
    DiGraph base, const LiveGraphOptions& options,
    std::shared_ptr<const void> warm_payload) {
  if (base.num_nodes() == 0) {
    return Status::InvalidArgument("cannot overlay an empty graph");
  }
  std::unique_ptr<LiveGraph> lg(new LiveGraph());
  const NodeId n = base.num_nodes();
  lg->num_nodes_ = n;
  lg->options_ = options;

  // Head-version degree/mutual tables start as the base's (O(n) + one
  // O(m) reciprocity pass — the same cost the warm degree indexes pay).
  lg->out_degree_.reset(new std::atomic<uint32_t>[n]);
  lg->in_degree_.reset(new std::atomic<uint32_t>[n]);
  lg->mutual_degree_.reset(new std::atomic<uint32_t>[n]);
  uint64_t reciprocated = 0;
  for (NodeId u = 0; u < n; ++u) {
    lg->out_degree_[u].store(base.OutDegree(u), std::memory_order_relaxed);
    lg->in_degree_[u].store(base.InDegree(u), std::memory_order_relaxed);
    uint32_t mutual = 0;
    for (NodeId v : base.OutNeighbors(u)) {
      if (base.HasEdge(v, u)) ++mutual;
    }
    lg->mutual_degree_[u].store(mutual, std::memory_order_relaxed);
    reciprocated += mutual;
  }
  lg->live_edges_.store(base.num_edges(), std::memory_order_relaxed);
  lg->reciprocated_.store(reciprocated, std::memory_order_relaxed);

  auto epoch = std::make_shared<Epoch>(std::move(base));
  epoch->warm_payload = std::move(warm_payload);
  lg->writer_epoch_ = epoch;
  lg->epoch_.store(std::shared_ptr<const Epoch>(epoch));

  if (!options.log_path.empty()) {
    // Recovery: an existing WAL is the authoritative mutation history for
    // this base — replay it (without re-journaling), then append after it.
    std::vector<Mutation> recovered;
    if (std::FILE* probe = std::fopen(options.log_path.c_str(), "rb")) {
      std::fclose(probe);
      auto read = ReadMutationLog(options.log_path);
      if (!read.ok()) return read.status();
      recovered = std::move(*read);
    }
    auto wal = MutationLogWriter::Open(options.log_path, options.sync_log);
    if (!wal.ok()) return wal.status();
    lg->wal_ = std::move(*wal);
    for (const Mutation& m : recovered) {
      auto applied = lg->ApplyInternal(m, /*journal=*/false);
      if (!applied.ok()) {
        return Status::Corruption("mutation log replay failed at version " +
                                  std::to_string(lg->applied_version() + 1) +
                                  ": " + applied.status().message());
      }
    }
    lg->recovered_ = recovered.size();
  }
  return lg;
}

std::shared_ptr<const LiveGraph::Epoch> LiveGraph::LoadEpoch() const {
  return epoch_.load(std::memory_order_acquire);
}

LiveSnapshot LiveGraph::Snapshot() const {
  // Order matters: epoch first, then applied. If a compaction swaps in
  // between, `applied` may exceed what the loaded (now sealed) epoch can
  // serve — clamping to sealed_version keeps the pair consistent, because
  // every version <= sealed exists in the old epoch's rows.
  std::shared_ptr<const Epoch> e = LoadEpoch();
  const uint64_t applied = applied_.load(std::memory_order_acquire);
  const uint64_t sealed = e->sealed_version.load(std::memory_order_acquire);
  return LiveSnapshot(std::move(e), std::min(applied, sealed));
}

Result<LiveSnapshot> LiveGraph::SnapshotAt(uint64_t version) const {
  for (int retry = 0; retry < 64; ++retry) {
    std::shared_ptr<const Epoch> e = LoadEpoch();
    const uint64_t applied = applied_.load(std::memory_order_acquire);
    if (version > applied) {
      return Status::FailedPrecondition(
          "version " + std::to_string(version) + " not applied yet (head is " +
          std::to_string(applied) + ")");
    }
    if (version < e->base_version) {
      return Status::FailedPrecondition(
          "version " + std::to_string(version) +
          " predates the live epoch (compacted through " +
          std::to_string(e->base_version) + ")");
    }
    if (version <= e->sealed_version.load(std::memory_order_acquire)) {
      return LiveSnapshot(std::move(e), version);
    }
    // The epoch was sealed between the loads; the replacement serves it.
  }
  return Status::Internal("snapshot capture did not stabilize");
}

bool LiveGraph::HeadHasEdge(const Epoch& epoch, NodeId u, NodeId v) const {
  const OverlayRow* row = epoch.fwd[u].load(std::memory_order_relaxed);
  if (row != nullptr) {
    if (const OverlayEdgeState* e = row->Find(v)) return e->PresentHead();
  }
  return epoch.base.HasEdge(u, v);
}

void LiveGraph::ToggleRow(Epoch* epoch, std::atomic<const OverlayRow*>& slot,
                          std::atomic<uint64_t>& row_count, NodeId neighbor,
                          bool base_present, uint64_t version) {
  const OverlayRow* old_row = slot.load(std::memory_order_relaxed);
  auto next = std::make_unique<OverlayRow>();
  if (old_row != nullptr) {
    next->entries = old_row->entries;
    next->min_version = old_row->min_version;
  } else {
    next->min_version = version;
    row_count.fetch_add(1, std::memory_order_relaxed);
  }
  auto it = std::lower_bound(
      next->entries.begin(), next->entries.end(), neighbor,
      [](const OverlayEdgeState& e, NodeId v) { return e.neighbor < v; });
  if (it == next->entries.end() || it->neighbor != neighbor) {
    OverlayEdgeState fresh;
    fresh.neighbor = neighbor;
    fresh.base_present = base_present;
    it = next->entries.insert(it, std::move(fresh));
    epoch->entries.fetch_add(1, std::memory_order_relaxed);
  }
  it->toggles.push_back(version);
  slot.store(next.release(), std::memory_order_release);
  if (old_row != nullptr) {
    epoch->graveyard.emplace_back(old_row);
    epoch->retired.fetch_add(1, std::memory_order_relaxed);
  }
}

bool LiveGraph::ApplyToEpoch(Epoch* epoch, uint64_t version,
                             const Mutation& m) {
  const bool want = m.op == MutationOp::kFollow;
  if (HeadHasEdge(*epoch, m.src, m.dst) == want) return false;
  ToggleRow(epoch, epoch->fwd[m.src], epoch->rows_fwd, m.dst,
            epoch->base.HasEdge(m.src, m.dst), version);
  ToggleRow(epoch, epoch->rev[m.dst], epoch->rows_rev, m.src,
            epoch->base.HasEdge(m.src, m.dst), version);
  return true;
}

Result<ApplyOutcome> LiveGraph::Apply(const Mutation& m) {
  return ApplyInternal(m, /*journal=*/true);
}

Result<ApplyOutcome> LiveGraph::ApplyInternal(const Mutation& m,
                                              bool journal) {
  if (m.src >= num_nodes_ || m.dst >= num_nodes_) {
    return Status::InvalidArgument(
        "mutation node id out of range: " + std::to_string(m.src) + " -> " +
        std::to_string(m.dst) + " (graph has " + std::to_string(num_nodes_) +
        " nodes)");
  }
  if (m.src == m.dst) {
    return Status::InvalidArgument("self-follow rejected: node " +
                                   std::to_string(m.src));
  }

  std::lock_guard<std::mutex> lock(apply_mutex_);
  const uint64_t version = applied_.load(std::memory_order_relaxed) + 1;
  // WAL first: a journaled-but-not-applied record replays idempotently; an
  // applied-but-not-journaled one would be lost history.
  if (journal && wal_ != nullptr) {
    EN_RETURN_IF_ERROR(wal_->Append(m));
  }

  Epoch* epoch = writer_epoch_.get();
  const bool changed = ApplyToEpoch(epoch, version, m);
  if (changed) {
    if (recording_tail_) tail_.push_back({version, m});
    const bool follow = m.op == MutationOp::kFollow;
    const int32_t delta = follow ? 1 : -1;
    (follow ? follows_ : unfollows_).fetch_add(1, std::memory_order_relaxed);
    live_edges_.fetch_add(static_cast<uint64_t>(static_cast<int64_t>(delta)),
                          std::memory_order_relaxed);
    out_degree_[m.src].fetch_add(static_cast<uint32_t>(delta),
                                 std::memory_order_relaxed);
    in_degree_[m.dst].fetch_add(static_cast<uint32_t>(delta),
                                std::memory_order_relaxed);
    // The reverse edge is untouched by this mutation, so reciprocity
    // changes iff dst -> src exists at the head.
    if (HeadHasEdge(*epoch, m.dst, m.src)) {
      reciprocated_.fetch_add(static_cast<uint64_t>(2 * delta),
                              std::memory_order_relaxed);
      mutual_degree_[m.src].fetch_add(static_cast<uint32_t>(delta),
                                      std::memory_order_relaxed);
      mutual_degree_[m.dst].fetch_add(static_cast<uint32_t>(delta),
                                      std::memory_order_relaxed);
    }
    // Current tombstone/add tallies (forward direction only, so an edge
    // counts once): a toggled base edge is a tombstone while absent, a
    // toggled non-base edge an overlay add while present.
    if (epoch->base.HasEdge(m.src, m.dst)) {
      tombstones_.fetch_add(static_cast<uint64_t>(follow ? -1 : 1),
                            std::memory_order_relaxed);
    } else {
      overlay_adds_.fetch_add(static_cast<uint64_t>(follow ? 1 : -1),
                              std::memory_order_relaxed);
    }
    const uint64_t rows = epoch->rows_fwd.load(std::memory_order_relaxed) +
                          epoch->rows_rev.load(std::memory_order_relaxed);
    if (rows > hw_rows_.load(std::memory_order_relaxed)) {
      hw_rows_.store(rows, std::memory_order_relaxed);
    }
    const uint64_t entries = epoch->entries.load(std::memory_order_relaxed);
    if (entries > hw_entries_.load(std::memory_order_relaxed)) {
      hw_entries_.store(entries, std::memory_order_relaxed);
    }
  } else {
    noops_.fetch_add(1, std::memory_order_relaxed);
  }
  // Publish: the version becomes readable only after its rows are.
  applied_.store(version, std::memory_order_release);

  ApplyOutcome out;
  out.version = version;
  out.changed = changed;
  return out;
}

uint64_t LiveGraph::base_version() const { return LoadEpoch()->base_version; }

double LiveGraph::current_reciprocity() const {
  const uint64_t edges = live_edges_.load(std::memory_order_relaxed);
  if (edges == 0) return 0.0;
  return static_cast<double>(reciprocated_.load(std::memory_order_relaxed)) /
         static_cast<double>(edges);
}

Result<CompactionStats> LiveGraph::Compact(const std::string& path,
                                           const WarmBuilder& warm_builder) {
  std::lock_guard<std::mutex> compact_lock(compact_mutex_);
  ELITENET_SPAN("serve.overlay.compact");
  util::SpanTimer timer;

  // Phase 1 — capture: fix the fold point and start recording the tail.
  std::shared_ptr<Epoch> old_epoch;
  uint64_t fold_version = 0;
  {
    std::lock_guard<std::mutex> lock(apply_mutex_);
    old_epoch = writer_epoch_;
    fold_version = applied_.load(std::memory_order_relaxed);
    recording_tail_ = true;
    tail_.clear();
  }
  auto abandon_tail = [this] {
    std::lock_guard<std::mutex> lock(apply_mutex_);
    recording_tail_ = false;
    tail_.clear();
  };

  // Phase 2 — merge base + overlay at the fold point into the streamed
  // writer. Applies continue concurrently; the snapshot filters them out.
  CompactionStats stats;
  stats.folded_version = fold_version;
  {
    ELITENET_SPAN("serve.overlay.compact.merge");
    LiveSnapshot snap(old_epoch, fold_version);
    util::ExtSortOptions sort_options;
    sort_options.budget_bytes = options_.compact_stream.sort_budget_bytes;
    sort_options.temp_dir = options_.compact_stream.temp_dir;
    sort_options.temp_prefix = "compact";
    util::ExtSorter sorter(sort_options);
    std::vector<uint64_t> batch;
    batch.reserve(4096);
    Status add_status = Status::OK();
    for (NodeId u = 0; u < num_nodes_ && add_status.ok(); ++u) {
      snap.ForEachOut(u, [&batch, u](NodeId v) {
        batch.push_back(util::PackEdge(u, v));
      });
      if (batch.size() >= 4096) {
        add_status = sorter.AddBatch(batch);
        batch.clear();
      }
    }
    if (add_status.ok() && !batch.empty()) {
      add_status = sorter.AddBatch(batch);
    }
    if (!add_status.ok()) {
      abandon_tail();
      return add_status;
    }
    // Temp-file + rename: a concurrent cold-start never maps a torn file.
    const std::string tmp = path + ".compact.tmp";
    auto written =
        graph::WriteStreamedV2(&sorter, num_nodes_, tmp, options_.compact_stream);
    if (!written.ok()) {
      std::remove(tmp.c_str());
      abandon_tail();
      return written.status();
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      abandon_tail();
      return Status::IoError("compaction rename to " + path + " failed");
    }
    stats.num_edges = written->num_edges;
    stats.graph_checksum = written->graph_checksum;
  }

  // Phase 3 — map the fresh base and build its warm payload (both outside
  // the writer lock; applies and reads continue against the old epoch).
  auto mapped = graph::MapBinary(path);
  if (!mapped.ok()) {
    abandon_tail();
    return mapped.status();
  }
  std::shared_ptr<const void> payload;
  if (warm_builder != nullptr) {
    auto built = warm_builder(*mapped);
    if (!built.ok()) {
      abandon_tail();
      return built.status();
    }
    payload = std::move(*built);
  }
  auto fresh = std::make_shared<Epoch>(std::move(*mapped));
  fresh->base_version = fold_version;
  fresh->epoch_seq = old_epoch->epoch_seq + 1;
  fresh->warm_payload = std::move(payload);

  // Phase 4 — swap: drain the tail into the new epoch at the original
  // versions, seal the old epoch, publish. Writers block only here.
  {
    std::lock_guard<std::mutex> lock(apply_mutex_);
    for (const TailRecord& t : tail_) {
      // Re-applies deterministically: the new base at fold_version plus
      // the already-drained prefix is exactly the state this mutation saw
      // in the old epoch, so it flips the same way.
      ApplyToEpoch(fresh.get(), t.version, t.mutation);
      ++stats.tail_replayed;
    }
    tail_.clear();
    recording_tail_ = false;
    old_epoch->sealed_version.store(applied_.load(std::memory_order_relaxed),
                                    std::memory_order_release);
    writer_epoch_ = fresh;
    epoch_.store(std::shared_ptr<const Epoch>(fresh));
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  last_compaction_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  stats.seconds = timer.Seconds();
  ELITENET_COUNT("serve.overlay.compactions", 1);
  return stats;
}

OverlayStats LiveGraph::Stats() const {
  OverlayStats s;
  s.applied = applied_.load(std::memory_order_acquire);
  s.follows = follows_.load(std::memory_order_relaxed);
  s.unfollows = unfollows_.load(std::memory_order_relaxed);
  s.noops = noops_.load(std::memory_order_relaxed);
  s.recovered = recovered_;
  s.live_edges = live_edges_.load(std::memory_order_relaxed);
  s.reciprocated_edges = reciprocated_.load(std::memory_order_relaxed);
  s.tombstones = tombstones_.load(std::memory_order_relaxed);
  s.overlay_adds = overlay_adds_.load(std::memory_order_relaxed);
  s.hw_rows = hw_rows_.load(std::memory_order_relaxed);
  s.hw_entries = hw_entries_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  std::shared_ptr<const Epoch> e = LoadEpoch();
  s.overlay_rows_fwd = e->rows_fwd.load(std::memory_order_relaxed);
  s.overlay_rows_rev = e->rows_rev.load(std::memory_order_relaxed);
  s.overlay_entries = e->entries.load(std::memory_order_relaxed);
  s.retired_rows = e->retired.load(std::memory_order_relaxed);
  s.epoch_seq = e->epoch_seq;
  s.base_version = e->base_version;
  s.base_edges = e->base.num_edges();
  const int64_t last = last_compaction_ns_.load(std::memory_order_relaxed);
  s.seconds_since_compaction =
      last == 0 ? -1.0 : static_cast<double>(SteadyNowNs() - last) / 1e9;
  return s;
}

}  // namespace serve
}  // namespace elitenet

#include "stats/special.h"

#include <cmath>

#include "util/check.h"

namespace elitenet {
namespace stats {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 3.0e-14;
constexpr double kFpMin = 1.0e-300;

// Lower incomplete gamma by series expansion; best for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper incomplete gamma by Lentz continued fraction; best for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double GammaP(double a, double x) {
  EN_CHECK(a > 0.0);
  EN_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double GammaQ(double a, double x) {
  EN_CHECK(a > 0.0);
  EN_CHECK(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double k) {
  EN_CHECK(k > 0.0);
  if (x <= 0.0) return 0.0;
  return GammaP(k / 2.0, x / 2.0);
}

double ChiSquareSurvival(double x, double k) {
  EN_CHECK(k > 0.0);
  if (x <= 0.0) return 1.0;
  return GammaQ(k / 2.0, x / 2.0);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double NormalSurvival(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double HurwitzZeta(double s, double q) {
  EN_CHECK(s > 1.0);
  EN_CHECK(q > 0.0);
  // Direct sum of the first N terms, then Euler–Maclaurin correction:
  // ζ(s,q) ≈ Σ_{k=0}^{N-1} (k+q)^-s + (N+q)^(1-s)/(s-1) + (N+q)^-s / 2
  //          + s (N+q)^(-s-1) / 12 - s(s+1)(s+2) (N+q)^(-s-3) / 720 ...
  const int N = 16;
  double sum = 0.0;
  for (int k = 0; k < N; ++k) {
    sum += std::pow(static_cast<double>(k) + q, -s);
  }
  const double a = static_cast<double>(N) + q;
  const double a_s = std::pow(a, -s);
  sum += a * a_s / (s - 1.0);      // a^(1-s)/(s-1)
  sum += a_s / 2.0;
  const double a1 = a_s / a;       // a^(-s-1)
  sum += s * a1 / 12.0;
  const double a3 = a1 / (a * a);  // a^(-s-3)
  sum -= s * (s + 1.0) * (s + 2.0) * a3 / 720.0;
  const double a5 = a3 / (a * a);  // a^(-s-5)
  sum += s * (s + 1.0) * (s + 2.0) * (s + 3.0) * (s + 4.0) * a5 / 30240.0;
  return sum;
}

double HurwitzZetaDs(double s, double q) {
  const double h = 1e-6 * std::max(1.0, std::fabs(s));
  return (HurwitzZeta(s + h, q) - HurwitzZeta(s - h, q)) / (2.0 * h);
}

}  // namespace stats
}  // namespace elitenet

// Derivative-free scalar and low-dimensional optimization used by the
// distribution fitters (truncated-MLE objectives have no closed form).

#ifndef ELITENET_STATS_OPTIMIZE_H_
#define ELITENET_STATS_OPTIMIZE_H_

#include <functional>
#include <vector>

namespace elitenet {
namespace stats {

/// Result of a scalar minimization.
struct ScalarMin {
  double x = 0.0;
  double fx = 0.0;
  int iterations = 0;
};

/// Golden-section minimization of a unimodal f over [lo, hi] to absolute
/// x-tolerance `tol`.
ScalarMin MinimizeGoldenSection(const std::function<double(double)>& f,
                                double lo, double hi, double tol = 1e-9,
                                int max_iter = 200);

/// Result of a Nelder–Mead minimization.
struct SimplexMin {
  std::vector<double> x;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Nelder–Mead simplex minimization from `x0` with per-coordinate initial
/// step `step`. Terminates when the simplex f-spread drops below `ftol`.
SimplexMin MinimizeNelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, double step = 0.5, double ftol = 1e-10,
    int max_iter = 2000);

/// Bisection root of a continuous f with f(lo), f(hi) of opposite sign.
/// Returns the midpoint after max_iter halvings or when |hi-lo| < tol.
double FindRootBisect(const std::function<double(double)>& f, double lo,
                      double hi, double tol = 1e-10, int max_iter = 200);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_OPTIMIZE_H_

// Correlation measures for Fig. 5 (centrality vs reach scatter analysis).

#ifndef ELITENET_STATS_CORRELATION_H_
#define ELITENET_STATS_CORRELATION_H_

#include <span>
#include <vector>

namespace elitenet {
namespace stats {

/// Pearson product-moment correlation. Returns 0 when either sample has
/// zero variance. Requires equal, nonzero lengths.
double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y);

/// Spearman rank correlation with average ranks for ties. The paper's
/// Fig. 5 relationships are monotone-but-nonlinear, so rank correlation is
/// the faithful summary statistic.
double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y);

/// Fractional (average-tie) ranks of a sample, 1-based.
std::vector<double> FractionalRanks(std::span<const double> x);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_CORRELATION_H_

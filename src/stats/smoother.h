// Log-log trend smoother standing in for the generalized-additive-model
// regression splines of Fig. 5. Bins log10(x), reports the mean of
// log10(y) per bin with a 95% normal-approximation confidence interval —
// exactly the information the paper's spline + CI bands convey (direction
// of trend, where it steepens, where returns diminish).

#ifndef ELITENET_STATS_SMOOTHER_H_
#define ELITENET_STATS_SMOOTHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace stats {

struct SmoothedPoint {
  double log_x_center = 0.0;  ///< Bin center in log10(x).
  double mean_log_y = 0.0;    ///< Mean log10(y) in the bin.
  double ci_low = 0.0;        ///< 95% CI lower bound on the mean.
  double ci_high = 0.0;       ///< 95% CI upper bound on the mean.
  uint64_t n = 0;             ///< Observations in the bin.
};

struct SmoothedCurve {
  std::vector<SmoothedPoint> points;
  /// Pearson correlation of log10(x), log10(y) over the retained pairs.
  double log_log_pearson = 0.0;
  /// Spearman rank correlation over the retained pairs.
  double spearman = 0.0;
  /// Pairs dropped because x <= 0 or y <= 0 (log undefined).
  uint64_t dropped = 0;
  /// Slope of the OLS line through (log x, log y) — the power-law-ish
  /// exponent of the trend.
  double ols_slope = 0.0;

  /// ASCII rendering of the smoothed curve (one row per bin).
  std::string ToAsciiChart(const std::string& x_label,
                           const std::string& y_label) const;
};

/// Computes the smoothed log-log trend with `num_bins` equal-width bins in
/// log10(x). Bins with fewer than `min_bin_n` points are merged into their
/// left neighbor. Requires >= 2 retained pairs.
Result<SmoothedCurve> SmoothLogLog(std::span<const double> x,
                                   std::span<const double> y,
                                   int num_bins = 20,
                                   uint64_t min_bin_n = 5);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_SMOOTHER_H_

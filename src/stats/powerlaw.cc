#include "stats/powerlaw.h"

#include <algorithm>
#include <cmath>

#include "stats/optimize.h"
#include "stats/special.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace stats {

namespace {

// KS distance between the sorted empirical tail and the fitted model CDF.
// Ties are grouped: for discrete data the empirical CDF steps once per
// distinct value, and the model CDF F(k) = P(X <= k) = 1 - S(k + 1) is
// compared at the step. (Comparing per-index stairs against the left
// limit would report a spurious distance of up to pmf(xmin) on heavily
// tied discrete samples.)
double KsDistance(const std::vector<double>& tail, const PowerLawFit& fit) {
  const double n = static_cast<double>(tail.size());
  double worst = 0.0;
  size_t i = 0;
  while (i < tail.size()) {
    size_t j = i;
    while (j + 1 < tail.size() && tail[j + 1] == tail[i]) ++j;
    const double value = tail[i];
    const double emp_before = static_cast<double>(i) / n;
    const double emp_after = static_cast<double>(j + 1) / n;
    double model_cdf;
    if (fit.discrete) {
      model_cdf = 1.0 - PowerLawSurvival(fit, value + 1.0);
    } else {
      model_cdf = 1.0 - PowerLawSurvival(fit, value);
      // Continuous CDF is compared against both stair edges.
      worst = std::max(worst, std::fabs(model_cdf - emp_before));
    }
    worst = std::max(worst, std::fabs(model_cdf - emp_after));
    i = j + 1;
  }
  return worst;
}

double DiscreteLogLikelihood(const std::vector<double>& tail, double alpha,
                             double xmin) {
  double sum_log = 0.0;
  for (double x : tail) sum_log += std::log(x);
  const double n = static_cast<double>(tail.size());
  return -n * std::log(HurwitzZeta(alpha, xmin)) - alpha * sum_log;
}

double ContinuousLogLikelihood(const std::vector<double>& tail, double alpha,
                               double xmin) {
  double sum_log_ratio = 0.0;
  for (double x : tail) sum_log_ratio += std::log(x / xmin);
  const double n = static_cast<double>(tail.size());
  return n * std::log((alpha - 1.0) / xmin) - alpha * sum_log_ratio;
}

// Shared xmin-scan driver; `fit_at` performs the per-xmin alpha fit.
template <typename FitFn>
Result<PowerLawFit> ScanXmin(std::span<const double> data,
                             const PowerLawOptions& opts, FitFn fit_at) {
  if (data.empty()) return Status::InvalidArgument("empty sample");

  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() <= 0.0) {
    return Status::InvalidArgument("power-law fit requires positive data");
  }

  std::vector<double> candidates;
  candidates.push_back(sorted.front());
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) candidates.push_back(sorted[i]);
  }
  // The largest values leave too small a tail; drop candidates violating
  // the min_tail_n constraint.
  {
    std::vector<double> kept;
    for (double c : candidates) {
      const size_t tail_n =
          sorted.end() - std::lower_bound(sorted.begin(), sorted.end(), c);
      if (tail_n >= opts.min_tail_n) kept.push_back(c);
    }
    if (kept.empty()) {
      return Status::FailedPrecondition(
          "no xmin candidate leaves enough tail observations");
    }
    candidates.swap(kept);
  }
  if (opts.max_xmin_candidates > 0 &&
      candidates.size() > opts.max_xmin_candidates) {
    std::vector<double> sub;
    sub.reserve(opts.max_xmin_candidates);
    const double stride = static_cast<double>(candidates.size()) /
                          static_cast<double>(opts.max_xmin_candidates);
    for (size_t i = 0; i < opts.max_xmin_candidates; ++i) {
      sub.push_back(candidates[static_cast<size_t>(i * stride)]);
    }
    candidates.swap(sub);
  }

  PowerLawFit best;
  bool have_best = false;
  for (double xmin : candidates) {
    Result<PowerLawFit> fit = fit_at(data, xmin);
    if (!fit.ok()) continue;
    if (!have_best || fit->ks_distance < best.ks_distance) {
      best = *fit;
      have_best = true;
    }
  }
  if (!have_best) {
    return Status::Internal("all xmin candidates failed to fit");
  }
  return best;
}

}  // namespace

std::vector<double> TailOf(std::span<const double> data, double xmin) {
  std::vector<double> tail;
  for (double x : data) {
    if (x >= xmin) tail.push_back(x);
  }
  std::sort(tail.begin(), tail.end());
  return tail;
}

Result<PowerLawFit> FitDiscreteAlpha(std::span<const double> data,
                                     double xmin,
                                     const PowerLawOptions& opts) {
  if (xmin < 1.0) {
    return Status::InvalidArgument("discrete fit requires xmin >= 1");
  }
  std::vector<double> tail = TailOf(data, xmin);
  if (tail.empty()) return Status::InvalidArgument("empty tail");

  double sum_log = 0.0;
  for (double x : tail) sum_log += std::log(x);
  const double n = static_cast<double>(tail.size());

  // Maximize the log-likelihood over alpha (negate for the minimizer).
  const auto neg_ll = [&](double a) {
    return n * std::log(HurwitzZeta(a, xmin)) + a * sum_log;
  };
  const ScalarMin m =
      MinimizeGoldenSection(neg_ll, opts.alpha_min, opts.alpha_max, 1e-8);

  PowerLawFit fit;
  fit.alpha = m.x;
  fit.xmin = xmin;
  fit.discrete = true;
  fit.tail_n = tail.size();
  fit.log_likelihood = DiscreteLogLikelihood(tail, fit.alpha, xmin);
  fit.ks_distance = KsDistance(tail, fit);
  return fit;
}

Result<PowerLawFit> FitContinuousAlpha(std::span<const double> data,
                                       double xmin,
                                       const PowerLawOptions& opts) {
  if (xmin <= 0.0) {
    return Status::InvalidArgument("continuous fit requires xmin > 0");
  }
  std::vector<double> tail = TailOf(data, xmin);
  if (tail.empty()) return Status::InvalidArgument("empty tail");

  double sum_log_ratio = 0.0;
  for (double x : tail) sum_log_ratio += std::log(x / xmin);
  if (sum_log_ratio <= 0.0) {
    return Status::FailedPrecondition("degenerate tail (all values == xmin)");
  }
  PowerLawFit fit;
  fit.alpha = 1.0 + static_cast<double>(tail.size()) / sum_log_ratio;
  fit.alpha = std::clamp(fit.alpha, opts.alpha_min, opts.alpha_max);
  fit.xmin = xmin;
  fit.discrete = false;
  fit.tail_n = tail.size();
  fit.log_likelihood = ContinuousLogLikelihood(tail, fit.alpha, xmin);
  fit.ks_distance = KsDistance(tail, fit);
  return fit;
}

Result<PowerLawFit> FitDiscrete(std::span<const double> data,
                                const PowerLawOptions& opts) {
  return ScanXmin(data, opts,
                  [&opts](std::span<const double> d, double xmin) {
                    return FitDiscreteAlpha(d, xmin, opts);
                  });
}

Result<PowerLawFit> FitContinuous(std::span<const double> data,
                                  const PowerLawOptions& opts) {
  return ScanXmin(data, opts,
                  [&opts](std::span<const double> d, double xmin) {
                    return FitContinuousAlpha(d, xmin, opts);
                  });
}

double PowerLawSurvival(const PowerLawFit& fit, double x) {
  if (x <= fit.xmin) return 1.0;
  if (fit.discrete) {
    // P(X >= x) = ζ(α, ceil(x)) / ζ(α, xmin).
    return HurwitzZeta(fit.alpha, std::ceil(x)) /
           HurwitzZeta(fit.alpha, fit.xmin);
  }
  return std::pow(x / fit.xmin, 1.0 - fit.alpha);
}

double SamplePowerLaw(const PowerLawFit& fit, util::Rng* rng) {
  if (!fit.discrete) {
    return rng->Pareto(fit.alpha, fit.xmin);
  }
  return static_cast<double>(SampleZeta(
      fit.alpha, static_cast<uint64_t>(std::llround(fit.xmin)), rng));
}

uint64_t SampleZeta(double alpha, uint64_t kmin, util::Rng* rng) {
  EN_CHECK(kmin >= 1);
  EN_CHECK(alpha > 1.0);
  double u;
  do {
    u = rng->UniformDouble();
  } while (u <= 0.0);
  const double denom = HurwitzZeta(alpha, static_cast<double>(kmin));
  // Survival S(k) = P(X >= k) = ζ(α, k) / ζ(α, kmin); S(kmin) = 1. Find
  // the smallest k with S(k + 1) < u, i.e. CDF(k) >= 1 - u.
  auto survival = [&](uint64_t k) {
    return HurwitzZeta(alpha, static_cast<double>(k)) / denom;
  };
  // Exponential doubling to bracket, then binary search.
  uint64_t lo = kmin;          // S(lo) >= u always
  uint64_t hi = kmin * 2 + 1;  // find hi with S(hi + 1) < u
  while (survival(hi + 1) >= u) {
    lo = hi;
    hi *= 2;
    if (hi > (uint64_t{1} << 60)) break;  // absurd tail; clamp
  }
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (survival(mid + 1) >= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<double> PointwiseLogLikelihood(std::span<const double> tail,
                                           const PowerLawFit& fit) {
  std::vector<double> ll;
  ll.reserve(tail.size());
  if (fit.discrete) {
    const double log_zeta = std::log(HurwitzZeta(fit.alpha, fit.xmin));
    for (double x : tail) {
      ll.push_back(-fit.alpha * std::log(x) - log_zeta);
    }
  } else {
    const double log_norm = std::log((fit.alpha - 1.0) / fit.xmin);
    for (double x : tail) {
      ll.push_back(log_norm - fit.alpha * std::log(x / fit.xmin));
    }
  }
  return ll;
}

Result<GoodnessOfFit> BootstrapGoodness(std::span<const double> data,
                                        const PowerLawFit& fit,
                                        int replicates, util::Rng* rng,
                                        const PowerLawOptions& opts) {
  ELITENET_SPAN("stats.bootstrap_goodness");
  if (replicates <= 0) {
    return Status::InvalidArgument("replicates must be positive");
  }
  ELITENET_COUNT("stats.bootstrap.replicates", replicates);
  std::vector<double> body;
  uint64_t tail_count = 0;
  for (double x : data) {
    if (x >= fit.xmin) {
      ++tail_count;
    } else {
      body.push_back(x);
    }
  }
  if (tail_count == 0) return Status::InvalidArgument("fit has empty tail");
  const double p_tail =
      static_cast<double>(tail_count) / static_cast<double>(data.size());

  // Replicates are independent tasks. Each draws from its own RNG
  // substream keyed by the replicate index, so the p-value is
  // bit-identical for any thread count (and failed refits stay attributed
  // to the same replicate). The caller's generator is advanced exactly
  // once, to derive the base seed.
  const uint64_t base_seed = rng->Next();
  std::vector<uint8_t> exceeded(static_cast<size_t>(replicates), 0);
  util::ParallelFor(
      0, static_cast<size_t>(replicates), 1, [&](size_t lo, size_t hi) {
        std::vector<double> synthetic(data.size());
        for (size_t r = lo; r < hi; ++r) {
          util::Rng rep_rng(util::SubstreamSeed(base_seed, r));
          for (double& x : synthetic) {
            if (body.empty() || rep_rng.Bernoulli(p_tail)) {
              x = SamplePowerLaw(fit, &rep_rng);
            } else {
              x = body[rep_rng.UniformU64(body.size())];
            }
          }
          const Result<PowerLawFit> refit =
              fit.discrete ? FitDiscrete(synthetic, opts)
                           : FitContinuous(synthetic, opts);
          if (!refit.ok()) continue;
          if (refit->ks_distance >= fit.ks_distance) exceeded[r] = 1;
        }
      });
  int exceed = 0;
  for (uint8_t e : exceeded) exceed += e;
  GoodnessOfFit out;
  out.replicates = replicates;
  out.p_value = static_cast<double>(exceed) / static_cast<double>(replicates);
  return out;
}

}  // namespace stats
}  // namespace elitenet

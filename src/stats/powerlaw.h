// Power-law fitting per Clauset, Shalizi & Newman (2009) — the method the
// paper uses (via Nepusz's plfit / R poweRlaw) for the out-degree and
// Laplacian-eigenvalue distributions in Section IV-B.
//
// Pipeline: (1) for each candidate xmin, fit alpha on the tail by maximum
// likelihood; (2) choose the xmin minimizing the Kolmogorov–Smirnov
// distance between the empirical tail and the fitted model; (3) assess
// goodness of fit with a parametric bootstrap p-value (p > 0.1 ⇒ the
// power law is plausible).

#ifndef ELITENET_STATS_POWERLAW_H_
#define ELITENET_STATS_POWERLAW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace elitenet {
namespace stats {

/// A fitted power law p(x) ~ x^-alpha for x >= xmin.
struct PowerLawFit {
  double alpha = 0.0;
  double xmin = 0.0;
  /// Kolmogorov–Smirnov distance between the empirical tail and the fit.
  double ks_distance = 0.0;
  /// Number of observations in the tail (x >= xmin).
  uint64_t tail_n = 0;
  /// Log-likelihood of the tail under the fit.
  double log_likelihood = 0.0;
  /// True if the data were treated as discrete (integer) values.
  bool discrete = false;
};

struct PowerLawOptions {
  /// Search range for alpha.
  double alpha_min = 1.01;
  double alpha_max = 6.0;
  /// Cap on the number of distinct xmin candidates scanned (evenly
  /// subsampled from the distinct values when exceeded). 0 = no cap.
  size_t max_xmin_candidates = 250;
  /// Require at least this many tail observations for an xmin candidate.
  uint64_t min_tail_n = 10;
};

/// Fits alpha for a *fixed* xmin by discrete MLE: maximizes
/// L(a) = -n ln ζ(a, xmin) - a Σ ln x_i over the tail x >= xmin.
/// Requires at least one tail observation with x >= xmin >= 1.
Result<PowerLawFit> FitDiscreteAlpha(std::span<const double> data,
                                     double xmin,
                                     const PowerLawOptions& opts = {});

/// Fits alpha for a fixed xmin by the continuous closed form
/// a = 1 + n / Σ ln(x_i / xmin).
Result<PowerLawFit> FitContinuousAlpha(std::span<const double> data,
                                       double xmin,
                                       const PowerLawOptions& opts = {});

/// Full CSN fit with xmin scan (discrete data: integer-valued counts such
/// as degrees).
Result<PowerLawFit> FitDiscrete(std::span<const double> data,
                                const PowerLawOptions& opts = {});

/// Full CSN fit with xmin scan (continuous data such as eigenvalues).
Result<PowerLawFit> FitContinuous(std::span<const double> data,
                                  const PowerLawOptions& opts = {});

/// Parametric-bootstrap goodness of fit: semi-parametric resampling
/// (empirical body below xmin, fitted power law above), refit per
/// replicate, p = fraction of replicate KS distances >= observed.
/// p > 0.1 indicates the power law is a plausible fit (CSN convention).
struct GoodnessOfFit {
  double p_value = 0.0;
  int replicates = 0;
};
Result<GoodnessOfFit> BootstrapGoodness(std::span<const double> data,
                                        const PowerLawFit& fit,
                                        int replicates, util::Rng* rng,
                                        const PowerLawOptions& opts = {});

/// Pointwise log-likelihoods of the tail observations under the fit, in
/// tail order — input to the Vuong likelihood-ratio test.
std::vector<double> PointwiseLogLikelihood(std::span<const double> tail,
                                           const PowerLawFit& fit);

/// Model survival function P(X >= x) for x >= xmin.
double PowerLawSurvival(const PowerLawFit& fit, double x);

/// Draws one value from the fitted tail distribution. Discrete fits use
/// exact zeta-distribution inverse-CDF sampling (doubling + binary search
/// on the survival function), not the rounded-Pareto approximation — the
/// approximation's systematic bias is detectable by the Vuong test at
/// sample sizes in the thousands.
double SamplePowerLaw(const PowerLawFit& fit, util::Rng* rng);

/// Exact sample from the discrete power law P(k) ∝ k^-alpha, k >= kmin.
uint64_t SampleZeta(double alpha, uint64_t kmin, util::Rng* rng);

/// Extracts tail observations (x >= xmin), sorted ascending.
std::vector<double> TailOf(std::span<const double> data, double xmin);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_POWERLAW_H_

#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace elitenet {
namespace stats {

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  EN_CHECK(x.size() == y.size());
  EN_CHECK(!x.empty());
  const double n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(std::span<const double> x) {
  const size_t n = x.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Average rank of the tie run [i, j] (1-based ranks).
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y) {
  EN_CHECK(x.size() == y.size());
  const std::vector<double> rx = FractionalRanks(x);
  const std::vector<double> ry = FractionalRanks(y);
  return PearsonCorrelation(rx, ry);
}

}  // namespace stats
}  // namespace elitenet

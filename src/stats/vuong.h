// Vuong's likelihood-ratio test for non-nested model comparison — used in
// Section IV-B to confirm the power law beats log-normal, exponential and
// Poisson fits of the out-degree tail ("significantly high 2-3 digit
// likelihood-ratio values").

#ifndef ELITENET_STATS_VUONG_H_
#define ELITENET_STATS_VUONG_H_

#include <span>

#include "util/status.h"

namespace elitenet {
namespace stats {

struct VuongResult {
  /// Summed log-likelihood difference R = Σ (l1_i - l2_i). Positive favors
  /// model 1.
  double log_likelihood_ratio = 0.0;
  /// Normalized statistic R / (s * sqrt(n)); asymptotically N(0,1) under
  /// the null of equivalent fit.
  double statistic = 0.0;
  /// Two-sided p-value of the normalized statistic.
  double p_two_sided = 0.0;
  /// One-sided p-value for "model 1 is better".
  double p_one_sided = 0.0;
};

/// Compares two models via their pointwise log-likelihoods on the same
/// observations. Fails if lengths differ, n < 2, or the pointwise
/// differences are all identical (zero variance).
Result<VuongResult> VuongTest(std::span<const double> ll_model1,
                              std::span<const double> ll_model2);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_VUONG_H_

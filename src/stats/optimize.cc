#include "stats/optimize.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace elitenet {
namespace stats {

ScalarMin MinimizeGoldenSection(const std::function<double(double)>& f,
                                double lo, double hi, double tol,
                                int max_iter) {
  EN_CHECK(lo < hi);
  const double invphi = (std::sqrt(5.0) - 1.0) / 2.0;   // 0.618...
  const double invphi2 = (3.0 - std::sqrt(5.0)) / 2.0;  // 0.382...
  double a = lo, b = hi;
  double h = b - a;
  double c = a + invphi2 * h;
  double d = a + invphi * h;
  double fc = f(c);
  double fd = f(d);
  int it = 0;
  while (h > tol && it < max_iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      h = b - a;
      c = a + invphi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      h = b - a;
      d = a + invphi * h;
      fd = f(d);
    }
    ++it;
  }
  ScalarMin out;
  out.x = fc < fd ? c : d;
  out.fx = std::min(fc, fd);
  out.iterations = it;
  return out;
}

SimplexMin MinimizeNelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, double step, double ftol, int max_iter) {
  const size_t n = x0.size();
  EN_CHECK(n >= 1);

  // Build the initial simplex: x0 plus one vertex per coordinate.
  std::vector<std::vector<double>> verts(n + 1, x0);
  for (size_t i = 0; i < n; ++i) verts[i + 1][i] += step;
  std::vector<double> fv(n + 1);
  for (size_t i = 0; i <= n; ++i) fv[i] = f(verts[i]);

  const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
  SimplexMin out;
  int it = 0;
  for (; it < max_iter; ++it) {
    // Order vertices by objective.
    std::vector<size_t> idx(n + 1);
    for (size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return fv[a] < fv[b]; });
    {
      std::vector<std::vector<double>> vs(n + 1);
      std::vector<double> fs(n + 1);
      for (size_t i = 0; i <= n; ++i) {
        vs[i] = verts[idx[i]];
        fs[i] = fv[idx[i]];
      }
      verts.swap(vs);
      fv.swap(fs);
    }
    if (std::fabs(fv[n] - fv[0]) < ftol) {
      out.converged = true;
      break;
    }
    // Centroid of all but the worst.
    std::vector<double> cen(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) cen[j] += verts[i][j];
    }
    for (size_t j = 0; j < n; ++j) cen[j] /= static_cast<double>(n);

    auto blend = [&](double t) {
      std::vector<double> p(n);
      for (size_t j = 0; j < n; ++j) {
        p[j] = cen[j] + t * (verts[n][j] - cen[j]);
      }
      return p;
    };

    const std::vector<double> xr = blend(-alpha);
    const double fr = f(xr);
    if (fr < fv[0]) {
      const std::vector<double> xe = blend(-gamma);
      const double fe = f(xe);
      if (fe < fr) {
        verts[n] = xe;
        fv[n] = fe;
      } else {
        verts[n] = xr;
        fv[n] = fr;
      }
    } else if (fr < fv[n - 1]) {
      verts[n] = xr;
      fv[n] = fr;
    } else {
      const std::vector<double> xc = blend(rho);
      const double fc = f(xc);
      if (fc < fv[n]) {
        verts[n] = xc;
        fv[n] = fc;
      } else {
        // Shrink toward the best vertex.
        for (size_t i = 1; i <= n; ++i) {
          for (size_t j = 0; j < n; ++j) {
            verts[i][j] = verts[0][j] + sigma * (verts[i][j] - verts[0][j]);
          }
          fv[i] = f(verts[i]);
        }
      }
    }
  }
  // Final ordering.
  size_t best = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (fv[i] < fv[best]) best = i;
  }
  out.x = verts[best];
  out.fx = fv[best];
  out.iterations = it;
  return out;
}

double FindRootBisect(const std::function<double(double)>& f, double lo,
                      double hi, double tol, int max_iter) {
  double flo = f(lo);
  const double fhi = f(hi);
  EN_CHECK(flo * fhi <= 0.0);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  for (int i = 0; i < max_iter && hi - lo > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((flo > 0.0) == (fmid > 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace stats
}  // namespace elitenet

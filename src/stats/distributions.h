// Alternative heavy-tailed candidates for the Vuong likelihood-ratio test
// of Section IV-B: truncated log-normal, truncated (shifted) exponential,
// and truncated Poisson, all conditioned on x >= xmin so they compete with
// the power law on the same tail.

#ifndef ELITENET_STATS_DISTRIBUTIONS_H_
#define ELITENET_STATS_DISTRIBUTIONS_H_

#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace stats {

/// Tail-conditioned MLE fit of a named alternative distribution.
struct AltFit {
  std::string name;
  /// Distribution parameters: log-normal {mu, sigma}; exponential
  /// {lambda}; Poisson {lambda}.
  std::vector<double> params;
  double xmin = 0.0;
  double log_likelihood = 0.0;
  /// Whether the distribution was discretized onto the integers. Must
  /// match the power-law side: comparing a continuous density against a
  /// discrete pmf biases the Vuong test by ~f(xmin)/2 per observation.
  bool discrete = false;
};

/// Log-normal restricted to x >= xmin; parameters fitted by Nelder–Mead
/// on the truncated likelihood. With `discrete`, uses the integer-binned
/// pmf (poweRlaw's dislnorm). Requires >= 2 tail values.
Result<AltFit> FitLogNormalTail(std::span<const double> data, double xmin,
                                bool discrete = false);

/// Shifted exponential on [xmin, ∞); with `discrete`, the shifted
/// geometric on integers. Closed-form MLE.
Result<AltFit> FitExponentialTail(std::span<const double> data, double xmin,
                                  bool discrete = false);

/// Poisson conditioned on k >= xmin (integer data); λ fitted by scalar
/// search on the truncated likelihood.
Result<AltFit> FitPoissonTail(std::span<const double> data, double xmin);

/// Pointwise log-likelihood of tail observations (sorted or not — order
/// is preserved) under the alternative fit.
std::vector<double> AltPointwiseLogLikelihood(std::span<const double> tail,
                                              const AltFit& fit);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_DISTRIBUTIONS_H_

#include "stats/vuong.h"

#include <cmath>
#include <vector>

#include "stats/special.h"

namespace elitenet {
namespace stats {

Result<VuongResult> VuongTest(std::span<const double> ll_model1,
                              std::span<const double> ll_model2) {
  if (ll_model1.size() != ll_model2.size()) {
    return Status::InvalidArgument("log-likelihood vectors differ in size");
  }
  const size_t n = ll_model1.size();
  if (n < 2) return Status::InvalidArgument("need at least 2 observations");

  std::vector<double> diff(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    diff[i] = ll_model1[i] - ll_model2[i];
    sum += diff[i];
  }
  const double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double d : diff) {
    const double e = d - mean;
    ss += e * e;
  }
  const double var = ss / static_cast<double>(n);
  if (var <= 0.0) {
    return Status::FailedPrecondition(
        "pointwise likelihood differences have zero variance");
  }

  VuongResult out;
  out.log_likelihood_ratio = sum;
  out.statistic = sum / (std::sqrt(var) * std::sqrt(static_cast<double>(n)));
  out.p_two_sided = 2.0 * NormalSurvival(std::fabs(out.statistic));
  out.p_one_sided = NormalSurvival(out.statistic);
  return out;
}

}  // namespace stats
}  // namespace elitenet

#include "stats/smoother.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "stats/correlation.h"

namespace elitenet {
namespace stats {

Result<SmoothedCurve> SmoothLogLog(std::span<const double> x,
                                   std::span<const double> y, int num_bins,
                                   uint64_t min_bin_n) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  if (num_bins < 1) return Status::InvalidArgument("num_bins must be >= 1");

  SmoothedCurve out;
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log10(x[i]));
      ly.push_back(std::log10(y[i]));
    } else {
      ++out.dropped;
    }
  }
  if (lx.size() < 2) {
    return Status::FailedPrecondition("fewer than 2 positive pairs");
  }

  out.log_log_pearson = PearsonCorrelation(lx, ly);
  out.spearman = SpearmanCorrelation(lx, ly);

  // OLS slope in log space.
  {
    double mx = 0.0, my = 0.0;
    for (size_t i = 0; i < lx.size(); ++i) {
      mx += lx[i];
      my += ly[i];
    }
    mx /= static_cast<double>(lx.size());
    my /= static_cast<double>(lx.size());
    double sxy = 0.0, sxx = 0.0;
    for (size_t i = 0; i < lx.size(); ++i) {
      sxy += (lx[i] - mx) * (ly[i] - my);
      sxx += (lx[i] - mx) * (lx[i] - mx);
    }
    out.ols_slope = sxx > 0.0 ? sxy / sxx : 0.0;
  }

  const double lo = *std::min_element(lx.begin(), lx.end());
  const double hi = *std::max_element(lx.begin(), lx.end());
  const double width =
      hi > lo ? (hi - lo) / num_bins : 1.0;  // degenerate: single bin

  struct BinAccum {
    double sum = 0.0;
    double sumsq = 0.0;
    double x_sum = 0.0;
    uint64_t n = 0;
  };
  std::vector<BinAccum> bins(static_cast<size_t>(num_bins));
  for (size_t i = 0; i < lx.size(); ++i) {
    int b = hi > lo ? static_cast<int>((lx[i] - lo) / width) : 0;
    b = std::clamp(b, 0, num_bins - 1);
    bins[static_cast<size_t>(b)].sum += ly[i];
    bins[static_cast<size_t>(b)].sumsq += ly[i] * ly[i];
    bins[static_cast<size_t>(b)].x_sum += lx[i];
    bins[static_cast<size_t>(b)].n += 1;
  }

  // Merge sparse bins leftward so every reported point is meaningful.
  std::vector<BinAccum> merged;
  for (const BinAccum& b : bins) {
    if (b.n == 0) continue;
    if (!merged.empty() &&
        (merged.back().n < min_bin_n || b.n < min_bin_n)) {
      merged.back().sum += b.sum;
      merged.back().sumsq += b.sumsq;
      merged.back().x_sum += b.x_sum;
      merged.back().n += b.n;
    } else {
      merged.push_back(b);
    }
  }

  for (const BinAccum& b : merged) {
    SmoothedPoint p;
    p.n = b.n;
    const double n = static_cast<double>(b.n);
    p.log_x_center = b.x_sum / n;
    p.mean_log_y = b.sum / n;
    double var = 0.0;
    if (b.n > 1) {
      var = std::max(0.0, (b.sumsq - b.sum * b.sum / n) / (n - 1.0));
    }
    const double half = 1.96 * std::sqrt(var / n);
    p.ci_low = p.mean_log_y - half;
    p.ci_high = p.mean_log_y + half;
    out.points.push_back(p);
  }
  return out;
}

std::string SmoothedCurve::ToAsciiChart(const std::string& x_label,
                                        const std::string& y_label) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "  log10(%s) -> mean log10(%s)  [95%% CI]   n\n",
                x_label.c_str(), y_label.c_str());
  out += line;
  if (points.empty()) return out;
  double lo = points.front().ci_low, hi = points.front().ci_high;
  for (const SmoothedPoint& p : points) {
    lo = std::min(lo, p.ci_low);
    hi = std::max(hi, p.ci_high);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  for (const SmoothedPoint& p : points) {
    const int pos =
        static_cast<int>(std::lround(40.0 * (p.mean_log_y - lo) / span));
    std::string bar(static_cast<size_t>(std::clamp(pos, 0, 40)), ' ');
    bar += '*';
    std::snprintf(line, sizeof(line),
                  "  %8.3f -> %8.3f [%7.3f, %7.3f] %8llu |%s\n",
                  p.log_x_center, p.mean_log_y, p.ci_low, p.ci_high,
                  static_cast<unsigned long long>(p.n), bar.c_str());
    out += line;
  }
  return out;
}

}  // namespace stats
}  // namespace elitenet

#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace elitenet {
namespace stats {

double Mean(std::span<const double> xs) {
  EN_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

namespace {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  EN_CHECK(!sorted.empty());
  EN_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return QuantileSorted(sorted, q);
}

Summary Describe(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.variance = Variance(xs);
  s.stddev = std::sqrt(s.variance);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = QuantileSorted(sorted, 0.5);
  s.q25 = QuantileSorted(sorted, 0.25);
  s.q75 = QuantileSorted(sorted, 0.75);
  return s;
}

double Skewness(std::span<const double> xs) {
  const size_t n = xs.size();
  if (n < 3) return 0.0;
  const double m = Mean(xs);
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  const double g1 = m3 / std::pow(m2, 1.5);
  const double dn = static_cast<double>(n);
  return std::sqrt(dn * (dn - 1.0)) / (dn - 2.0) * g1;
}

double Gini(std::span<const double> xs) {
  EN_CHECK(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  double cum_weighted = 0.0, total = 0.0;
  const double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EN_CHECK(sorted[i] >= 0.0);
    cum_weighted += (static_cast<double>(i) + 1.0) * sorted[i];
    total += sorted[i];
  }
  EN_CHECK(total > 0.0);
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace stats
}  // namespace elitenet

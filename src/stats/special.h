// Special functions underpinning the statistical tests: regularized
// incomplete gamma (chi-square CDF for Ljung-Box / Box-Pierce), normal CDF
// (Vuong test), and the Hurwitz zeta function (discrete power-law MLE
// normalization). Implementations follow Numerical-Recipes-style series /
// continued-fraction evaluations written from the underlying math.

#ifndef ELITENET_STATS_SPECIAL_H_
#define ELITENET_STATS_SPECIAL_H_

namespace elitenet {
namespace stats {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double GammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double GammaQ(double a, double x);

/// Chi-square CDF with k degrees of freedom evaluated at x.
double ChiSquareCdf(double x, double k);

/// Chi-square upper tail (survival) probability: P[X >= x].
double ChiSquareSurvival(double x, double k);

/// Standard normal CDF Φ(x).
double NormalCdf(double x);

/// Standard normal survival 1 - Φ(x), accurate in the far tail.
double NormalSurvival(double x);

/// Hurwitz zeta ζ(s, q) = Σ_{k>=0} (k+q)^-s for s > 1, q > 0.
/// Euler–Maclaurin evaluation; absolute accuracy ~1e-12 for s in (1, 20].
double HurwitzZeta(double s, double q);

/// d/ds ζ(s, q), via central finite difference of HurwitzZeta (adequate
/// for the MLE root-finding use which only needs sign/monotone accuracy).
double HurwitzZetaDs(double s, double q);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_SPECIAL_H_

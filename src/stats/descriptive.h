// Descriptive statistics over double samples.

#ifndef ELITENET_STATS_DESCRIPTIVE_H_
#define ELITENET_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace elitenet {
namespace stats {

/// Summary of a sample; produced by Describe().
struct Summary {
  uint64_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1 denominator); 0 when n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

double Mean(std::span<const double> xs);

/// Unbiased sample variance; 0 when fewer than 2 observations.
double Variance(std::span<const double> xs);

double StdDev(std::span<const double> xs);

/// Linear-interpolation quantile of a sample, q in [0, 1]. Copies and
/// sorts internally. Requires non-empty input.
double Quantile(std::span<const double> xs, double q);

/// Full summary in one pass (plus one sort for the quantiles).
Summary Describe(std::span<const double> xs);

/// Skewness (adjusted Fisher–Pearson); 0 when n < 3 or zero variance.
double Skewness(std::span<const double> xs);

/// Gini coefficient of a non-negative sample — used to report the
/// concentration of followers among verified elites. Requires non-empty
/// input with a positive sum.
double Gini(std::span<const double> xs);

}  // namespace stats
}  // namespace elitenet

#endif  // ELITENET_STATS_DESCRIPTIVE_H_

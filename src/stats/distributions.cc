#include "stats/distributions.h"

#include <algorithm>
#include <cmath>

#include "stats/optimize.h"
#include "stats/powerlaw.h"
#include "stats/special.h"
#include "util/check.h"

namespace elitenet {
namespace stats {

namespace {

constexpr double kLogSqrt2Pi = 0.9189385332046727;  // ln sqrt(2*pi)
constexpr double kTiny = 1e-300;

// Log-normal survival S(x) = P(X >= x) for x > 0.
double LogNormalSurvival(double x, double mu, double sigma) {
  return NormalSurvival((std::log(x) - mu) / sigma);
}

// Per-point log density of the xmin-truncated continuous log-normal.
double LogNormalTailLlContinuous(double x, double mu, double sigma,
                                 double xmin) {
  const double z = (std::log(x) - mu) / sigma;
  const double tail_z = (std::log(xmin) - mu) / sigma;
  const double log_surv =
      std::log(std::max(NormalSurvival(tail_z), kTiny));
  return -std::log(x) - std::log(sigma) - kLogSqrt2Pi - 0.5 * z * z -
         log_surv;
}

// Discretized log-normal pmf on integers k >= xmin (poweRlaw "dislnorm"
// convention): P(k) = [S(k-1/2) - S(k+1/2)] / S(xmin-1/2). Comparing a
// continuous density against a discrete pmf would hand the continuous
// model a spurious ~f(xmin)/2 per-point advantage.
double LogNormalTailLlDiscrete(double k, double mu, double sigma,
                               double xmin) {
  const double lo = std::max(k - 0.5, 1e-12);
  const double mass = LogNormalSurvival(lo, mu, sigma) -
                      LogNormalSurvival(k + 0.5, mu, sigma);
  const double norm =
      LogNormalSurvival(std::max(xmin - 0.5, 1e-12), mu, sigma);
  return std::log(std::max(mass, kTiny)) - std::log(std::max(norm, kTiny));
}

double PoissonTailLl(double k, double lambda, double xmin) {
  const double m = std::ceil(xmin);
  const double log_surv = std::log(std::max(GammaP(m, lambda), kTiny));
  return k * std::log(lambda) - lambda - std::lgamma(k + 1.0) - log_surv;
}

}  // namespace

Result<AltFit> FitLogNormalTail(std::span<const double> data, double xmin,
                                bool discrete) {
  const std::vector<double> tail = TailOf(data, xmin);
  if (tail.size() < 2) {
    return Status::InvalidArgument("log-normal tail fit needs >= 2 values");
  }
  // Initialize from the untruncated MLE of ln x.
  double mu0 = 0.0;
  for (double x : tail) mu0 += std::log(x);
  mu0 /= static_cast<double>(tail.size());
  double var0 = 0.0;
  for (double x : tail) {
    const double d = std::log(x) - mu0;
    var0 += d * d;
  }
  var0 /= static_cast<double>(tail.size());
  const double sigma0 = std::max(std::sqrt(var0), 1e-2);

  const auto neg_ll = [&](const std::vector<double>& p) {
    const double mu = p[0];
    const double sigma = p[1];
    if (sigma <= 1e-6 || sigma > 1e3) return 1e18;
    // Reject parameter regions where the truncation survival underflows:
    // there the floored mass/norm ratio degenerates to 1 and the
    // optimizer would read "perfect fit" off pure round-off.
    if (LogNormalSurvival(std::max(xmin - 0.5, 1e-12), mu, sigma) < 1e-12) {
      return 1e18;
    }
    double total = 0.0;
    for (double x : tail) {
      total += discrete ? LogNormalTailLlDiscrete(x, mu, sigma, xmin)
                        : LogNormalTailLlContinuous(x, mu, sigma, xmin);
    }
    return -total;
  };
  const SimplexMin m = MinimizeNelderMead(neg_ll, {mu0, sigma0}, 0.25);

  AltFit fit;
  fit.name = "log-normal";
  fit.params = m.x;
  fit.xmin = xmin;
  fit.discrete = discrete;
  fit.log_likelihood = -m.fx;
  return fit;
}

Result<AltFit> FitExponentialTail(std::span<const double> data, double xmin,
                                  bool discrete) {
  const std::vector<double> tail = TailOf(data, xmin);
  if (tail.empty()) return Status::InvalidArgument("empty tail");
  double mean = 0.0;
  for (double x : tail) mean += x;
  mean /= static_cast<double>(tail.size());
  if (mean <= xmin) {
    return Status::FailedPrecondition("tail mean not above xmin");
  }

  AltFit fit;
  fit.name = "exponential";
  fit.xmin = xmin;
  fit.discrete = discrete;
  if (discrete) {
    // Shifted geometric on integers k >= xmin: pmf(k) =
    // (1 - e^-lambda) e^{-lambda (k - xmin)}; MLE from the mean offset.
    const double p = 1.0 / (mean - xmin + 1.0);
    const double lambda = -std::log1p(-std::min(p, 1.0 - 1e-12));
    fit.params = {lambda};
  } else {
    fit.params = {1.0 / (mean - xmin)};
  }
  fit.log_likelihood = 0.0;
  const std::vector<double> ll = AltPointwiseLogLikelihood(tail, fit);
  for (double v : ll) fit.log_likelihood += v;
  return fit;
}

Result<AltFit> FitPoissonTail(std::span<const double> data, double xmin) {
  const std::vector<double> tail = TailOf(data, xmin);
  if (tail.empty()) return Status::InvalidArgument("empty tail");
  double mean = 0.0;
  for (double x : tail) {
    if (x != std::floor(x)) {
      return Status::InvalidArgument("Poisson fit requires integer data");
    }
    mean += x;
  }
  mean /= static_cast<double>(tail.size());

  const auto neg_ll = [&](double lambda) {
    if (lambda <= 1e-9) return 1e18;
    double total = 0.0;
    for (double k : tail) total += PoissonTailLl(k, lambda, xmin);
    return -total;
  };
  // The truncated MLE lies in (0, mean]; search a generous bracket.
  const ScalarMin m =
      MinimizeGoldenSection(neg_ll, 1e-6, std::max(2.0 * mean, 10.0), 1e-7);

  AltFit fit;
  fit.name = "poisson";
  fit.params = {m.x};
  fit.xmin = xmin;
  fit.discrete = true;
  fit.log_likelihood = -m.fx;
  return fit;
}

std::vector<double> AltPointwiseLogLikelihood(std::span<const double> tail,
                                              const AltFit& fit) {
  std::vector<double> out;
  out.reserve(tail.size());
  if (fit.name == "log-normal") {
    EN_CHECK(fit.params.size() == 2);
    for (double x : tail) {
      out.push_back(fit.discrete
                        ? LogNormalTailLlDiscrete(x, fit.params[0],
                                                  fit.params[1], fit.xmin)
                        : LogNormalTailLlContinuous(x, fit.params[0],
                                                    fit.params[1], fit.xmin));
    }
  } else if (fit.name == "exponential") {
    EN_CHECK(fit.params.size() == 1);
    const double lambda = fit.params[0];
    if (fit.discrete) {
      const double log_norm = std::log1p(-std::exp(-lambda));
      for (double x : tail) {
        out.push_back(log_norm - lambda * (x - fit.xmin));
      }
    } else {
      for (double x : tail) {
        out.push_back(std::log(lambda) - lambda * (x - fit.xmin));
      }
    }
  } else if (fit.name == "poisson") {
    EN_CHECK(fit.params.size() == 1);
    for (double x : tail) {
      out.push_back(PoissonTailLl(x, fit.params[0], fit.xmin));
    }
  } else {
    EN_CHECK_MSG(false, "unknown alternative distribution");
  }
  return out;
}

}  // namespace stats
}  // namespace elitenet

#include "text/ngram.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"

namespace elitenet {
namespace text {

NGramCounter::NGramCounter(int n, bool filter_stopwords)
    : n_(n), filter_stopwords_(filter_stopwords) {
  EN_CHECK(n >= 1 && n <= 5);
}

void NGramCounter::AddDocument(std::string_view bio) {
  AddClauses(TokenizeClauses(bio, tokenizer_options_));
}

void NGramCounter::AddClauses(
    const std::vector<std::vector<std::string>>& clauses) {
  const size_t n = static_cast<size_t>(n_);
  for (const auto& tokens : clauses) {
    if (tokens.size() < n) continue;
    for (size_t i = 0; i + n <= tokens.size(); ++i) {
      if (filter_stopwords_) {
        size_t stop = 0;
        for (size_t j = 0; j < n; ++j) {
          if (IsStopWord(tokens[i + j])) ++stop;
        }
        // "Largely non-informative": strict majority of stop words.
        if (2 * stop > n) continue;
      }
      std::string key = tokens[i];
      for (size_t j = 1; j < n; ++j) {
        key += ' ';
        key += tokens[i + j];
      }
      ++counts_[key];
      ++total_;
    }
  }
}

uint64_t NGramCounter::CountOf(const std::string& ngram) const {
  const auto it = counts_.find(ngram);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<NGramCount> NGramCounter::TopK(size_t k) const {
  std::vector<NGramCount> all;
  all.reserve(counts_.size());
  for (const auto& [ngram, count] : counts_) {
    all.push_back({ngram, count});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const NGramCount& a, const NGramCount& b) {
                      if (a.count != b.count) return a.count > b.count;
                      return a.ngram < b.ngram;
                    });
  all.resize(take);
  return all;
}

std::vector<NGramCount> FilterSubsumed(const std::vector<NGramCount>& grams,
                                       const NGramCounter& longer,
                                       double ratio) {
  // One pass over the longer phrases: each (n+1)-gram contains exactly
  // two n-grams (drop first token, drop last token). Record the largest
  // parent count for each contained n-gram.
  std::unordered_map<std::string, uint64_t> best_parent;
  for (const auto& [phrase, count] : longer.counts()) {
    const size_t first_space = phrase.find(' ');
    const size_t last_space = phrase.rfind(' ');
    if (first_space == std::string::npos || first_space == last_space) {
      continue;  // not long enough to contain a shorter n-gram
    }
    const std::string tail = phrase.substr(first_space + 1);
    const std::string head = phrase.substr(0, last_space);
    auto update = [&](const std::string& sub) {
      auto [it, inserted] = best_parent.try_emplace(sub, count);
      if (!inserted && count > it->second) it->second = count;
    };
    update(tail);
    update(head);
  }

  std::vector<NGramCount> kept;
  kept.reserve(grams.size());
  for (const NGramCount& g : grams) {
    const auto it = best_parent.find(g.ngram);
    const bool subsumed =
        it != best_parent.end() &&
        static_cast<double>(it->second) >=
            ratio * static_cast<double>(g.count);
    if (!subsumed) kept.push_back(g);
  }
  return kept;
}

std::string TitleCase(const std::string& ngram) {
  std::string out = ngram;
  bool start = true;
  for (char& c : out) {
    if (c == ' ') {
      start = true;
    } else if (start) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      start = false;
    }
  }
  return out;
}

}  // namespace text
}  // namespace elitenet

#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace elitenet {
namespace text {

namespace {

bool IsClauseBreak(char c) {
  return c == '.' || c == ',' || c == ';' || c == '|' || c == '!' ||
         c == '?' || c == '/' || c == '\n';
}

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '\'';
}

}  // namespace

std::vector<std::vector<std::string>> TokenizeClauses(
    std::string_view bio, const TokenizerOptions& options) {
  std::vector<std::vector<std::string>> clauses;
  std::vector<std::string> current;
  std::string token;

  auto flush_token = [&]() {
    if (token.empty()) return;
    current.push_back(token);
    token.clear();
  };
  auto flush_clause = [&]() {
    flush_token();
    if (!current.empty()) {
      clauses.push_back(std::move(current));
      current.clear();
    }
  };

  size_t i = 0;
  const size_t n = bio.size();
  while (i < n) {
    const char c = bio[i];
    // URL: skip to whitespace.
    if (options.drop_urls &&
        (bio.substr(i, 7) == "http://" || bio.substr(i, 8) == "https://" ||
         bio.substr(i, 4) == "www.")) {
      flush_token();
      while (i < n && !std::isspace(static_cast<unsigned char>(bio[i]))) ++i;
      continue;
    }
    // @mention: skip handle characters.
    if (options.drop_mentions && c == '@') {
      flush_token();
      ++i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(bio[i])) ||
                       bio[i] == '_')) {
        ++i;
      }
      continue;
    }
    if (c == '#') {
      flush_token();
      ++i;
      if (!options.keep_hashtag_text) {
        while (i < n && (std::isalnum(static_cast<unsigned char>(bio[i])) ||
                         bio[i] == '_')) {
          ++i;
        }
      }
      continue;
    }
    if (IsTokenChar(c)) {
      if (c != '\'') {  // drop apostrophes but keep the word joined
        token += options.lowercase
                     ? static_cast<char>(
                           std::tolower(static_cast<unsigned char>(c)))
                     : c;
      }
      ++i;
      continue;
    }
    if (IsClauseBreak(c)) {
      flush_clause();
      ++i;
      continue;
    }
    // Any other character (space, emoji bytes, dashes) ends the token.
    flush_token();
    ++i;
  }
  flush_clause();
  return clauses;
}

std::vector<std::string> Tokenize(std::string_view bio,
                                  const TokenizerOptions& options) {
  std::vector<std::string> out;
  for (auto& clause : TokenizeClauses(bio, options)) {
    for (auto& tok : clause) out.push_back(std::move(tok));
  }
  return out;
}

bool IsStopWord(std::string_view lowercase_token) {
  static const std::unordered_set<std::string_view> kStopWords = {
      "a",     "an",    "and",   "are",   "as",    "at",    "be",    "been",
      "but",   "by",    "for",   "from",  "get",   "got",   "had",   "has",
      "have",  "he",    "her",   "here",  "him",   "his",   "i",     "if",
      "in",    "into",  "is",    "it",    "its",   "just",  "like",  "me",
      "more",  "most",  "my",    "no",    "not",   "of",    "on",    "or",
      "our",   "out",   "she",   "so",    "some",  "than",  "that",  "the",
      "their", "them",  "then",  "there", "these", "they",  "this",  "those",
      "to",    "too",   "up",    "us",    "was",   "we",    "were",  "what",
      "when",  "where", "which", "who",   "whom",  "why",   "will",  "with",
      "you",   "your",  "all",   "also",  "am",    "about", "do",    "does",
      "dont",  "im",    "via",   "can",   "'",     "s",     "t",     "re",
  };
  return kStopWords.contains(lowercase_token);
}

}  // namespace text
}  // namespace elitenet

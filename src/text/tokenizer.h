// Bio tokenization for the n-gram analysis of Section IV-E. ASCII-oriented
// (the study covers English-language profiles): lower-cases, strips
// punctuation, keeps alphanumeric tokens, drops URLs and @mentions, and
// treats sentence punctuation as an n-gram boundary so phrases do not
// span clauses.

#ifndef ELITENET_TEXT_TOKENIZER_H_
#define ELITENET_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace elitenet {
namespace text {

struct TokenizerOptions {
  bool lowercase = true;
  bool drop_urls = true;
  bool drop_mentions = true;  ///< @handles
  bool keep_hashtag_text = true;  ///< "#MondayMotivation" -> "mondaymotivation"
};

/// A bio split into clauses; each clause is a token sequence. N-grams are
/// formed within clauses only.
std::vector<std::vector<std::string>> TokenizeClauses(
    std::string_view bio, const TokenizerOptions& options = {});

/// Flat token list (clause boundaries discarded) — used for unigrams.
std::vector<std::string> Tokenize(std::string_view bio,
                                  const TokenizerOptions& options = {});

/// True for tokens that carry no standalone meaning for the word cloud
/// (articles, pronouns, prepositions, common verbs — the paper "filters
/// out n-grams constituted largely of non-informative words").
bool IsStopWord(std::string_view lowercase_token);

}  // namespace text
}  // namespace elitenet

#endif  // ELITENET_TEXT_TOKENIZER_H_

// N-gram frequency mining over bio corpora (Section IV-E, Fig. 4 and
// Tables I-II). Follows the paper's filtering rule: n-grams "constituted
// largely of non-informative words" are dropped — implemented as a
// strict-majority stop-word test.

#ifndef ELITENET_TEXT_NGRAM_H_
#define ELITENET_TEXT_NGRAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/tokenizer.h"
#include "util/status.h"

namespace elitenet {
namespace text {

struct NGramCount {
  std::string ngram;  ///< space-joined tokens, e.g. "official twitter"
  uint64_t count = 0;
};

/// Accumulates n-gram counts across documents for a fixed n.
class NGramCounter {
 public:
  /// `n` in [1, 5]. When `filter_stopwords` is set, an n-gram is dropped
  /// if more than half of its tokens are stop words (for unigrams: if the
  /// token is a stop word).
  explicit NGramCounter(int n, bool filter_stopwords = true);

  /// Tokenizes `bio` and counts its n-grams (within clause boundaries).
  void AddDocument(std::string_view bio);

  /// Counts n-grams from pre-tokenized clauses.
  void AddClauses(const std::vector<std::vector<std::string>>& clauses);

  uint64_t total_ngrams() const { return total_; }
  size_t distinct() const { return counts_.size(); }

  /// Count of one n-gram (space-joined, lowercase), 0 if absent.
  uint64_t CountOf(const std::string& ngram) const;

  /// The k most frequent n-grams, descending count, ties alphabetical.
  std::vector<NGramCount> TopK(size_t k) const;

  /// Full count map (read-only), used by FilterSubsumed.
  const std::unordered_map<std::string, uint64_t>& counts() const {
    return counts_;
  }

 private:
  int n_;
  bool filter_stopwords_;
  TokenizerOptions tokenizer_options_;
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Title-cases an n-gram for table display ("official twitter" ->
/// "Official Twitter").
std::string TitleCase(const std::string& ngram);

/// Removes n-grams that are subsumed by a longer phrase: an n-gram is
/// dropped when some (n+1)-gram containing it accounts for at least
/// `ratio` of its occurrences (e.g. "twitter account" is fully explained
/// by "official twitter account" and adds no information). The paper's
/// Table I is curated this way — "Weather Alerts EN" appears in the
/// trigram table with 847 occurrences while neither "Weather Alerts" nor
/// "Alerts EN" appears among the top bigrams.
std::vector<NGramCount> FilterSubsumed(const std::vector<NGramCount>& grams,
                                       const NGramCounter& longer,
                                       double ratio = 0.9);

}  // namespace text
}  // namespace elitenet

#endif  // ELITENET_TEXT_NGRAM_H_

// Sample autocorrelation function and the Ljung–Box / Box–Pierce
// portmanteau tests of Section V (the paper tests up to lag 185 and
// reports maximum p-values of 3.81e-38 / 7.57e-38).

#ifndef ELITENET_TIMESERIES_ACF_H_
#define ELITENET_TIMESERIES_ACF_H_

#include <span>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace timeseries {

/// Sample autocorrelations r_1..r_max_lag (biased denominator, the
/// standard convention). Requires max_lag < series length.
Result<std::vector<double>> Autocorrelation(std::span<const double> series,
                                            int max_lag);

struct PortmanteauResult {
  /// Entry h-1 holds the statistic/p-value for the test using lags 1..h.
  std::vector<double> statistics;
  std::vector<double> p_values;
  /// Largest p-value across all tested lag depths — the number the paper
  /// quotes to summarize the test battery.
  double max_p_value = 0.0;
  int max_lag = 0;
};

/// Ljung–Box: Q(h) = n(n+2) Σ_{k=1..h} r_k²/(n-k), χ²(h) under the null
/// of no autocorrelation.
Result<PortmanteauResult> LjungBoxTest(std::span<const double> series,
                                       int max_lag);

/// Box–Pierce: Q(h) = n Σ_{k=1..h} r_k², χ²(h) under the null.
Result<PortmanteauResult> BoxPierceTest(std::span<const double> series,
                                        int max_lag);

}  // namespace timeseries
}  // namespace elitenet

#endif  // ELITENET_TIMESERIES_ACF_H_

#include "timeseries/calendar.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace elitenet {
namespace timeseries {

int64_t DaysFromCivil(const Date& d) {
  int y = d.year;
  const int m = d.month;
  const int day = d.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(day) - 1u;                                 // [0, 365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;       // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

Date CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);        // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                             // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                   // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));   // [1, 12]
  Date out;
  out.year = static_cast<int>(y + (m <= 2));
  out.month = static_cast<int>(m);
  out.day = static_cast<int>(day);
  return out;
}

int DayOfWeek(const Date& d) {
  const int64_t z = DaysFromCivil(d);
  // 1970-01-01 was a Thursday (weekday 4 with Sunday = 0).
  return static_cast<int>(((z % 7) + 11) % 7);
}

Date AddDays(const Date& d, int64_t n) {
  return CivilFromDays(DaysFromCivil(d) + n);
}

bool IsValidDate(const Date& d) {
  if (d.month < 1 || d.month > 12 || d.day < 1) return false;
  return CivilFromDays(DaysFromCivil(d)) == d;
}

std::string FormatDate(const Date& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return std::string(buf);
}

const char* MonthName(int month) {
  static const char* kNames[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                 "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  if (month < 1 || month > 12) return "???";
  return kNames[month - 1];
}

Result<std::string> RenderCalendarHeatmap(const Date& start,
                                          std::span<const double> values) {
  if (!IsValidDate(start)) return Status::InvalidArgument("invalid date");
  if (values.empty()) return Status::InvalidArgument("no values");

  // Quintile thresholds over the observed values.
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  auto quintile = [&](double q) {
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  const double q1 = quintile(0.2), q2 = quintile(0.4), q3 = quintile(0.6),
               q4 = quintile(0.8);
  auto intensity = [&](double v) {
    if (v <= q1) return '.';
    if (v <= q2) return '-';
    if (v <= q3) return '+';
    if (v <= q4) return '*';
    return '#';
  };

  auto month_label = [](const Date& d) {
    std::string label = std::string(MonthName(d.month)) + " " +
                        std::to_string(d.year) + " ";
    label.resize(9, ' ');
    return label;
  };

  std::string out = "         Su Mo Tu We Th Fr Sa\n";
  Date cur = start;
  int col = DayOfWeek(start);
  int last_month = cur.month;
  std::string line = month_label(cur) + std::string(
      static_cast<size_t>(col) * 3, ' ');
  for (size_t i = 0; i < values.size(); ++i) {
    if (cur.month != last_month) {
      // Month boundary: flush the partial week and restart the row so
      // each month is visually separated, like Fig. 6's panels.
      out += line;
      out += '\n';
      line = month_label(cur) +
             std::string(static_cast<size_t>(col) * 3, ' ');
      last_month = cur.month;
    }
    line += ' ';
    line += intensity(values[i]);
    line += ' ';
    ++col;
    if (col == 7) {
      col = 0;
      out += line;
      out += '\n';
      line = std::string(9, ' ');
    }
    cur = AddDays(cur, 1);
  }
  if (line.find_first_not_of(' ') != std::string::npos) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace timeseries
}  // namespace elitenet

#include "timeseries/ols.h"

#include <cmath>

namespace elitenet {
namespace timeseries {

Result<OlsResult> FitOls(const Matrix& x, const std::vector<double>& y) {
  const size_t n = x.rows();
  const size_t k = x.cols();
  if (n <= k) {
    return Status::InvalidArgument("need more observations than parameters");
  }
  EN_ASSIGN_OR_RETURN(LeastSquaresSolution sol, SolveLeastSquares(x, y));

  OlsResult out;
  out.coefficients = sol.x;
  out.rss = sol.rss;
  out.n_obs = n;
  out.n_params = k;
  out.sigma2 = sol.rss / static_cast<double>(n - k);

  out.std_errors.resize(k);
  out.t_statistics.resize(k);
  for (size_t j = 0; j < k; ++j) {
    out.std_errors[j] = std::sqrt(out.sigma2 * sol.xtx_inv_diag[j]);
    out.t_statistics[j] =
        out.std_errors[j] > 0.0 ? out.coefficients[j] / out.std_errors[j]
                                : 0.0;
  }

  // Gaussian log-likelihood with MLE variance rss/n (statsmodels matches).
  const double dn = static_cast<double>(n);
  const double sigma2_mle = std::max(sol.rss / dn, 1e-300);
  out.log_likelihood =
      -0.5 * dn * (std::log(2.0 * M_PI) + std::log(sigma2_mle) + 1.0);
  out.aic = 2.0 * static_cast<double>(k) - 2.0 * out.log_likelihood;
  out.bic = std::log(dn) * static_cast<double>(k) - 2.0 * out.log_likelihood;

  // R² against the mean model.
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= dn;
  double tss = 0.0;
  for (double v : y) tss += (v - mean) * (v - mean);
  out.r_squared = tss > 0.0 ? 1.0 - sol.rss / tss : 0.0;
  return out;
}

}  // namespace timeseries
}  // namespace elitenet

#include "timeseries/pelt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/trace.h"

namespace elitenet {
namespace timeseries {

namespace {

// Segment costs in O(1) from prefix sums. Cost of [s, e) is the Normal
// twice-negative-log-likelihood with MLE mean and variance:
//   n * (log(2π) + log(σ̂²) + 1)
// with σ̂² floored to keep constant segments finite.
class NormalCost {
 public:
  explicit NormalCost(std::span<const double> x)
      : sum_(x.size() + 1, 0.0), sumsq_(x.size() + 1, 0.0) {
    for (size_t i = 0; i < x.size(); ++i) {
      sum_[i + 1] = sum_[i] + x[i];
      sumsq_[i + 1] = sumsq_[i] + x[i] * x[i];
    }
  }

  double operator()(size_t s, size_t e) const {
    const double n = static_cast<double>(e - s);
    const double mean = (sum_[e] - sum_[s]) / n;
    double var = (sumsq_[e] - sumsq_[s]) / n - mean * mean;
    var = std::max(var, 1e-8);
    return n * (std::log(2.0 * M_PI) + std::log(var) + 1.0);
  }

 private:
  std::vector<double> sum_;
  std::vector<double> sumsq_;
};

double DefaultPenalty(size_t n) {
  // 2 free parameters per segment (mean, variance): BIC-style penalty.
  return 2.0 * 2.0 * std::log(static_cast<double>(std::max<size_t>(n, 2)));
}

}  // namespace

Result<PeltResult> Pelt(std::span<const double> series,
                        const PeltOptions& options) {
  ELITENET_SPAN("timeseries.pelt");
  const size_t n = series.size();
  const size_t min_len =
      static_cast<size_t>(std::max(options.min_segment_length, 2));
  if (n < 2 * min_len) {
    return Status::InvalidArgument("series too short for segmentation");
  }
  const double beta =
      options.penalty > 0.0 ? options.penalty : DefaultPenalty(n);

  const NormalCost cost(series);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // F[t] = optimal cost of segmenting [0, t); cp[t] = last change before t.
  std::vector<double> f(n + 1, kInf);
  std::vector<size_t> last_cp(n + 1, 0);
  f[0] = -beta;

  PeltResult out;
  std::vector<size_t> candidates{0};
  for (size_t t = min_len; t <= n; ++t) {
    double best = kInf;
    size_t best_s = 0;
    for (size_t s : candidates) {
      if (t - s < min_len) continue;
      const double c = f[s] + cost(s, t) + beta;
      if (c < best) {
        best = c;
        best_s = s;
      }
    }
    f[t] = best;
    last_cp[t] = best_s;

    // Prune: s stays viable only if f[s] + C(s,t) <= f[t]. (K = 0 for
    // this cost family.)
    std::vector<size_t> kept;
    kept.reserve(candidates.size() + 1);
    for (size_t s : candidates) {
      if (t - s < min_len || f[s] + cost(s, t) <= f[t]) {
        kept.push_back(s);
      } else {
        ++out.pruned;
      }
    }
    // t becomes a candidate "last change-point" for future positions.
    kept.push_back(t);
    candidates.swap(kept);
  }

  // Backtrack.
  std::vector<size_t> cps;
  size_t t = n;
  while (t > 0) {
    const size_t s = last_cp[t];
    if (s == 0) break;
    cps.push_back(s);
    t = s;
  }
  std::sort(cps.begin(), cps.end());
  out.change_points = std::move(cps);
  out.total_cost = f[n];
  return out;
}

Result<PenaltySweepResult> PeltPenaltySweep(
    std::span<const double> series, const PenaltySweepOptions& options) {
  ELITENET_SPAN("timeseries.pelt_sweep");
  const size_t n = series.size();
  const double base = DefaultPenalty(n);
  const double hi = options.penalty_hi > 0.0 ? options.penalty_hi : 8.0 * base;
  const double lo =
      options.penalty_lo > 0.0 ? options.penalty_lo : 0.25 * base;
  if (hi < lo || options.cool <= 0.0 || options.cool >= 1.0) {
    return Status::InvalidArgument("bad penalty sweep bounds");
  }

  // Vote accumulation: cluster change-points within tolerance_days. Each
  // run contributes at most one vote per representative, so support is a
  // true fraction of runs.
  std::map<size_t, int> votes;  // representative index -> run count
  int runs = 0;
  for (double beta = hi; beta >= lo; beta *= options.cool) {
    PeltOptions po;
    po.penalty = beta;
    po.min_segment_length = options.min_segment_length;
    EN_ASSIGN_OR_RETURN(PeltResult r, Pelt(series, po));
    ++runs;
    std::vector<size_t> reps_this_run;
    for (size_t cp : r.change_points) {
      // Snap to an existing representative within tolerance.
      size_t rep = cp;
      for (const auto& [existing, count] : votes) {
        const size_t d = existing > cp ? existing - cp : cp - existing;
        if (d <= static_cast<size_t>(options.tolerance_days)) {
          rep = existing;
          break;
        }
      }
      bool already = false;
      for (size_t seen : reps_this_run) {
        if (seen == rep) {
          already = true;
          break;
        }
      }
      if (already) continue;
      reps_this_run.push_back(rep);
      ++votes[rep];  // creates the representative on first sighting
    }
  }

  PenaltySweepResult out;
  out.runs = runs;
  for (const auto& [rep, count] : votes) {
    const double support =
        static_cast<double>(count) / static_cast<double>(runs);
    if (support >= options.stability_threshold) {
      out.stable.push_back({rep, support});
    }
  }
  std::sort(out.stable.begin(), out.stable.end(),
            [](const StableChangePoint& a, const StableChangePoint& b) {
              return a.index < b.index;
            });
  return out;
}

}  // namespace timeseries
}  // namespace elitenet

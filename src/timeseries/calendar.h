// Civil-calendar arithmetic and the calendar heat-map layout of Fig. 6.
// Date math uses Howard Hinnant's days-from-civil algorithm (public
// domain), implemented here without <chrono> calendar types to keep the
// toolchain requirements minimal.

#ifndef ELITENET_TIMESERIES_CALENDAR_H_
#define ELITENET_TIMESERIES_CALENDAR_H_

#include <cstdint>
#include <span>
#include <string>

#include "util/status.h"

namespace elitenet {
namespace timeseries {

struct Date {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  bool operator==(const Date&) const = default;
};

/// Days since 1970-01-01 (can be negative).
int64_t DaysFromCivil(const Date& d);

/// Inverse of DaysFromCivil.
Date CivilFromDays(int64_t days);

/// 0 = Sunday .. 6 = Saturday.
int DayOfWeek(const Date& d);

/// Date `n` days after `d` (n may be negative).
Date AddDays(const Date& d, int64_t n);

/// True for valid proleptic-Gregorian dates.
bool IsValidDate(const Date& d);

/// "2017-12-24".
std::string FormatDate(const Date& d);

/// Three-letter month name, 1-based.
const char* MonthName(int month);

/// ASCII calendar heat map: one row per week, one cell per day, intensity
/// scaled into quintiles of the value range (the shape Fig. 6 conveys —
/// weekday banding and level shifts). `values[i]` is the activity on
/// start + i days.
Result<std::string> RenderCalendarHeatmap(const Date& start,
                                          std::span<const double> values);

}  // namespace timeseries
}  // namespace elitenet

#endif  // ELITENET_TIMESERIES_CALENDAR_H_

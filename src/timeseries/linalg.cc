#include "timeseries/linalg.h"

#include <cmath>

namespace elitenet {
namespace timeseries {

Result<LeastSquaresSolution> SolveLeastSquares(const Matrix& a,
                                               const std::vector<double>& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m) return Status::InvalidArgument("b size mismatch");
  if (m < n) return Status::InvalidArgument("underdetermined system");
  if (n == 0) return Status::InvalidArgument("no regressors");

  // Working copies: R starts as A; qtb starts as b.
  Matrix r = a;
  std::vector<double> qtb = b;

  // Householder triangularization, applying each reflector to qtb.
  for (size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      return Status::FailedPrecondition(
          "rank-deficient design matrix (collinear column " +
          std::to_string(k) + ")");
    }
    const double alpha = r(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha e_k, stored in the column below the diagonal.
    std::vector<double> v(m - k);
    v[0] = r(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 < 1e-300) continue;  // column already triangular

    // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing block of R and to qtb.
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i - k] * r(i, j);
      const double f = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double dot = 0.0;
    for (size_t i = k; i < m; ++i) dot += v[i - k] * qtb[i];
    const double f = 2.0 * dot / vnorm2;
    for (size_t i = k; i < m; ++i) qtb[i] -= f * v[i - k];
  }

  for (size_t k = 0; k < n; ++k) {
    if (std::fabs(r(k, k)) < 1e-12) {
      return Status::FailedPrecondition("singular R factor");
    }
  }

  LeastSquaresSolution sol;
  sol.x.assign(n, 0.0);
  // Back substitution R x = (Qᵀ b)[0..n).
  for (size_t i = n; i-- > 0;) {
    double acc = qtb[i];
    for (size_t j = i + 1; j < n; ++j) acc -= r(i, j) * sol.x[j];
    sol.x[i] = acc / r(i, i);
  }
  // RSS = ||tail of Qᵀ b||².
  for (size_t i = n; i < m; ++i) sol.rss += qtb[i] * qtb[i];

  // diag((AᵀA)⁻¹) = rows of R⁻¹ squared-summed: inv is upper triangular.
  Matrix rinv(n, n, 0.0);
  for (size_t j = n; j-- > 0;) {
    rinv(j, j) = 1.0 / r(j, j);
    for (size_t i = j; i-- > 0;) {
      double acc = 0.0;
      for (size_t k = i + 1; k <= j; ++k) acc += r(i, k) * rinv(k, j);
      rinv(i, j) = -acc / r(i, i);
    }
  }
  sol.xtx_inv_diag.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t k = i; k < n; ++k) acc += rinv(i, k) * rinv(i, k);
    sol.xtx_inv_diag[i] = acc;
  }
  return sol;
}

}  // namespace timeseries
}  // namespace elitenet

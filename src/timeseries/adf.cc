#include "timeseries/adf.h"

#include <algorithm>
#include <cmath>

#include "timeseries/ols.h"
#include "util/trace.h"

namespace elitenet {
namespace timeseries {

namespace {

// Builds the ADF design matrix for `p` augmentation lags over the sample
// t = start..n-1 of the differenced series (start >= p + 1 in diff index
// space ensures all lags exist). Columns: [y_{t-1}, Δy_{t-1}..Δy_{t-p},
// const, (trend)].
struct AdfDesign {
  Matrix x;
  std::vector<double> y;
  size_t gamma_col = 0;
};

AdfDesign BuildDesign(std::span<const double> series, int p, size_t start,
                      AdfRegression reg) {
  const size_t n = series.size();
  std::vector<double> diff(n - 1);
  for (size_t t = 1; t < n; ++t) diff[t - 1] = series[t] - series[t - 1];

  // Rows correspond to diff indices start..diff.size()-1, i.e. the
  // regression explains Δy at original time t = diff_index + 1.
  const size_t rows = diff.size() - start;
  const size_t base_cols = 1 + static_cast<size_t>(p);
  const size_t extra = reg == AdfRegression::kConstantTrend ? 2 : 1;
  AdfDesign d{Matrix(rows, base_cols + extra), std::vector<double>(rows), 0};

  for (size_t r = 0; r < rows; ++r) {
    const size_t di = start + r;       // index into diff
    const size_t t = di + 1;           // index into series (Δy_t target)
    d.y[r] = diff[di];
    d.x(r, 0) = series[t - 1];         // lagged level -> γ
    for (int i = 1; i <= p; ++i) {
      d.x(r, static_cast<size_t>(i)) = diff[di - static_cast<size_t>(i)];
    }
    d.x(r, base_cols) = 1.0;           // constant
    if (reg == AdfRegression::kConstantTrend) {
      d.x(r, base_cols + 1) = static_cast<double>(t);  // trend
    }
  }
  d.gamma_col = 0;
  return d;
}

}  // namespace

double MacKinnonCriticalValue(double level, AdfRegression regression,
                              size_t n_obs) {
  // MacKinnon (2010) response-surface coefficients (as in statsmodels
  // mackinnoncrit): crit = b0 + b1/T + b2/T² + b3/T³.
  struct Coef {
    double b0, b1, b2, b3;
  };
  const double t = static_cast<double>(n_obs);
  Coef c{};
  if (regression == AdfRegression::kConstant) {
    if (level <= 0.015) {
      c = {-3.43035, -6.5393, -16.786, -79.433};
    } else if (level <= 0.075) {
      c = {-2.86154, -2.8903, -4.234, -40.040};
    } else {
      c = {-2.56677, -1.5384, -2.809, 0.0};
    }
  } else {
    if (level <= 0.015) {
      c = {-3.95877, -9.0531, -28.428, -134.155};
    } else if (level <= 0.075) {
      c = {-3.41049, -4.3904, -9.036, -45.374};
    } else {
      c = {-3.12705, -2.5856, -3.925, -22.380};
    }
  }
  return c.b0 + c.b1 / t + c.b2 / (t * t) + c.b3 / (t * t * t);
}

Result<AdfResult> AdfTest(std::span<const double> series,
                          const AdfOptions& options) {
  ELITENET_SPAN("timeseries.adf");
  const size_t n = series.size();
  if (n < 15) return Status::InvalidArgument("series too short for ADF");

  const size_t extra =
      options.regression == AdfRegression::kConstantTrend ? 2 : 1;

  int max_lag = options.max_lag;
  if (max_lag < 0) {
    // Schwert (1989) rule of thumb.
    max_lag = static_cast<int>(
        std::floor(12.0 * std::pow(static_cast<double>(n) / 100.0, 0.25)));
  }
  // Keep the largest-lag regression overdetermined with headroom: rows at
  // max trim are (n - 1 - max_lag), params are max_lag + 1 + extra.
  const int feasible =
      static_cast<int>(n) - 2 * static_cast<int>(extra) - 12;
  max_lag = std::clamp(max_lag, 0, std::max(0, (feasible - 2) / 2));

  int best_lag = max_lag;
  if (options.auto_lag) {
    // statsmodels: all candidate regressions share the max-lag trim so
    // their AICs are comparable.
    const size_t start = static_cast<size_t>(max_lag);
    double best_aic = 0.0;
    bool have = false;
    for (int p = 0; p <= max_lag; ++p) {
      const AdfDesign d =
          BuildDesign(series, p, start, options.regression);
      const Result<OlsResult> fit = FitOls(d.x, d.y);
      if (!fit.ok()) continue;
      if (!have || fit->aic < best_aic) {
        best_aic = fit->aic;
        best_lag = p;
        have = true;
      }
    }
    if (!have) {
      return Status::FailedPrecondition("no ADF regression could be fit");
    }
  }

  // Final regression trims only by the chosen lag.
  const AdfDesign d = BuildDesign(series, best_lag,
                                  static_cast<size_t>(best_lag),
                                  options.regression);
  EN_ASSIGN_OR_RETURN(OlsResult fit, FitOls(d.x, d.y));

  AdfResult out;
  out.statistic = fit.t_statistics[d.gamma_col];
  out.gamma = fit.coefficients[d.gamma_col];
  out.used_lag = best_lag;
  out.n_obs = fit.n_obs;
  out.crit_1pct = MacKinnonCriticalValue(0.01, options.regression, fit.n_obs);
  out.crit_5pct = MacKinnonCriticalValue(0.05, options.regression, fit.n_obs);
  out.crit_10pct =
      MacKinnonCriticalValue(0.10, options.regression, fit.n_obs);
  out.stationary_at_5pct = out.statistic < out.crit_5pct;
  return out;
}

}  // namespace timeseries
}  // namespace elitenet

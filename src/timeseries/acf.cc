#include "timeseries/acf.h"

#include <cmath>

#include "stats/special.h"

namespace elitenet {
namespace timeseries {

Result<std::vector<double>> Autocorrelation(std::span<const double> series,
                                            int max_lag) {
  const size_t n = series.size();
  if (max_lag < 1) return Status::InvalidArgument("max_lag must be >= 1");
  if (static_cast<size_t>(max_lag) >= n) {
    return Status::InvalidArgument("max_lag must be below series length");
  }
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double c0 = 0.0;
  for (double x : series) c0 += (x - mean) * (x - mean);
  if (c0 <= 0.0) {
    return Status::FailedPrecondition("constant series has no ACF");
  }

  std::vector<double> acf(static_cast<size_t>(max_lag));
  for (int k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (size_t t = static_cast<size_t>(k); t < n; ++t) {
      ck += (series[t] - mean) * (series[t - k] - mean);
    }
    acf[static_cast<size_t>(k - 1)] = ck / c0;
  }
  return acf;
}

namespace {

enum class PortmanteauKind { kLjungBox, kBoxPierce };

Result<PortmanteauResult> PortmanteauImpl(std::span<const double> series,
                                          int max_lag,
                                          PortmanteauKind kind) {
  EN_ASSIGN_OR_RETURN(std::vector<double> acf,
                      Autocorrelation(series, max_lag));
  const double n = static_cast<double>(series.size());

  PortmanteauResult out;
  out.max_lag = max_lag;
  out.statistics.reserve(acf.size());
  out.p_values.reserve(acf.size());
  double cum = 0.0;
  for (int h = 1; h <= max_lag; ++h) {
    const double rk = acf[static_cast<size_t>(h - 1)];
    if (kind == PortmanteauKind::kLjungBox) {
      cum += rk * rk / (n - static_cast<double>(h));
    } else {
      cum += rk * rk;
    }
    const double q = kind == PortmanteauKind::kLjungBox
                         ? n * (n + 2.0) * cum
                         : n * cum;
    const double p = stats::ChiSquareSurvival(q, static_cast<double>(h));
    out.statistics.push_back(q);
    out.p_values.push_back(p);
    if (p > out.max_p_value) out.max_p_value = p;
  }
  return out;
}

}  // namespace

Result<PortmanteauResult> LjungBoxTest(std::span<const double> series,
                                       int max_lag) {
  return PortmanteauImpl(series, max_lag, PortmanteauKind::kLjungBox);
}

Result<PortmanteauResult> BoxPierceTest(std::span<const double> series,
                                        int max_lag) {
  return PortmanteauImpl(series, max_lag, PortmanteauKind::kBoxPierce);
}

}  // namespace timeseries
}  // namespace elitenet

// Ordinary least squares with the inference quantities the ADF test needs
// (coefficient t-statistics, AIC for auto-lag selection).

#ifndef ELITENET_TIMESERIES_OLS_H_
#define ELITENET_TIMESERIES_OLS_H_

#include <vector>

#include "timeseries/linalg.h"
#include "util/status.h"

namespace elitenet {
namespace timeseries {

struct OlsResult {
  std::vector<double> coefficients;
  std::vector<double> std_errors;
  std::vector<double> t_statistics;
  double rss = 0.0;
  double sigma2 = 0.0;  ///< rss / (n - k)
  size_t n_obs = 0;
  size_t n_params = 0;
  /// Gaussian log-likelihood at the MLE variance (rss / n).
  double log_likelihood = 0.0;
  /// Akaike information criterion: 2k - 2 logL (statsmodels convention).
  double aic = 0.0;
  double bic = 0.0;
  double r_squared = 0.0;
};

/// Fits y = X b + e. Requires rows(X) == |y|, rows > cols, full rank.
Result<OlsResult> FitOls(const Matrix& x, const std::vector<double>& y);

}  // namespace timeseries
}  // namespace elitenet

#endif  // ELITENET_TIMESERIES_OLS_H_

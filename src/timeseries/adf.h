// Augmented Dickey–Fuller unit-root test (Section V): the paper runs ADF
// with a constant and a trend term, lags up to 185, and compares the test
// statistic (-3.86) against the 95% critical value (-3.42) to conclude
// stationarity. We mirror statsmodels' adfuller: OLS on
//   Δy_t = c + βt + γ y_{t-1} + Σ φ_i Δy_{t-i} + ε_t,
// AIC auto-lag selection, MacKinnon response-surface critical values.

#ifndef ELITENET_TIMESERIES_ADF_H_
#define ELITENET_TIMESERIES_ADF_H_

#include <span>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace timeseries {

enum class AdfRegression {
  kConstant,       ///< constant only ("c")
  kConstantTrend,  ///< constant + linear trend ("ct") — the paper's setup
};

struct AdfOptions {
  AdfRegression regression = AdfRegression::kConstantTrend;
  /// Maximum augmentation lag considered. Clamped so the regression keeps
  /// more observations than parameters. -1 = Schwert rule
  /// 12*(n/100)^0.25.
  int max_lag = -1;
  /// Pick the lag minimizing AIC over 0..max_lag (statsmodels
  /// autolag="AIC"). When false, use max_lag directly.
  bool auto_lag = true;
};

struct AdfResult {
  double statistic = 0.0;  ///< t-statistic of γ
  int used_lag = 0;
  size_t n_obs = 0;        ///< observations in the final regression
  double crit_1pct = 0.0;
  double crit_5pct = 0.0;
  double crit_10pct = 0.0;
  /// statistic < crit_5pct: reject the unit root at 95% — stationary.
  bool stationary_at_5pct = false;
  /// γ coefficient itself (should be negative for mean reversion).
  double gamma = 0.0;
};

/// Runs the test. Requires a series long enough for the chosen lags
/// (roughly n > max_lag + 10).
Result<AdfResult> AdfTest(std::span<const double> series,
                          const AdfOptions& options = {});

/// MacKinnon (2010) finite-sample critical value for the given level
/// (0.01 / 0.05 / 0.10), regression type, and effective sample size.
double MacKinnonCriticalValue(double level, AdfRegression regression,
                              size_t n_obs);

}  // namespace timeseries
}  // namespace elitenet

#endif  // ELITENET_TIMESERIES_ADF_H_

// Small dense linear algebra for the econometric regressions (ADF test
// design matrices are at most a few hundred columns). Row-major Matrix
// plus Householder QR least squares — numerically safer than normal
// equations for the near-collinear lag matrices ADF produces.

#ifndef ELITENET_TIMESERIES_LINALG_H_
#define ELITENET_TIMESERIES_LINALG_H_

#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace elitenet {
namespace timeseries {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    EN_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    EN_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solution of min ||A x - b||₂ by Householder QR with column checks.
struct LeastSquaresSolution {
  std::vector<double> x;
  /// Residual sum of squares ||A x - b||².
  double rss = 0.0;
  /// Diagonal of (AᵀA)⁻¹ (via R factor), for coefficient standard errors.
  std::vector<double> xtx_inv_diag;
};

/// Requires rows >= cols and full column rank (returns FailedPrecondition
/// when an R diagonal underflows — collinear regressors).
Result<LeastSquaresSolution> SolveLeastSquares(const Matrix& a,
                                               const std::vector<double>& b);

}  // namespace timeseries
}  // namespace elitenet

#endif  // ELITENET_TIMESERIES_LINALG_H_

// PELT change-point detection (Killick, Fearnhead & Eckley 2012) with the
// Normal mean+variance cost — the paper's Section V procedure: run the
// algorithm repeatedly while cooling the penalty, and accept change-points
// that recur across a significant fraction of runs (it finds Dec 23–25 and
// the first week of April).

#ifndef ELITENET_TIMESERIES_PELT_H_
#define ELITENET_TIMESERIES_PELT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace timeseries {

struct PeltOptions {
  /// Penalty per change-point. Common default: BIC-like
  /// 2 * p * log(n) with p = 2 free parameters (mean, variance).
  double penalty = 0.0;  ///< <= 0 means "use the BIC default".
  /// Minimum segment length; the Normal mean+variance cost needs >= 2.
  int min_segment_length = 3;
};

struct PeltResult {
  /// Change-point positions: index of the first element of each new
  /// segment (ascending, excludes 0 and n).
  std::vector<size_t> change_points;
  /// Total penalized cost of the optimal segmentation.
  double total_cost = 0.0;
  /// How many candidate indices PELT pruned (for perf introspection).
  uint64_t pruned = 0;
};

/// Exact optimal segmentation under the penalized Normal(μ,σ²) likelihood
/// cost, O(n) amortized via pruning.
Result<PeltResult> Pelt(std::span<const double> series,
                        const PeltOptions& options = {});

struct PenaltySweepOptions {
  /// Penalty cool-down: start at `penalty_hi`, multiply by `cool` each
  /// run until below `penalty_lo`.
  double penalty_hi = 0.0;  ///< <= 0: 8x the BIC default
  double penalty_lo = 0.0;  ///< <= 0: 0.25x the BIC default
  double cool = 0.75;
  int min_segment_length = 3;
  /// A change-point is "stable" when it appears (within `tolerance_days`)
  /// in at least this fraction of runs.
  double stability_threshold = 0.6;
  int tolerance_days = 3;
};

struct StableChangePoint {
  size_t index = 0;       ///< representative (median) position
  double support = 0.0;   ///< fraction of runs containing it
};

struct PenaltySweepResult {
  std::vector<StableChangePoint> stable;
  int runs = 0;
};

/// The paper's cool-down voting procedure over penalties.
Result<PenaltySweepResult> PeltPenaltySweep(
    std::span<const double> series, const PenaltySweepOptions& options = {});

}  // namespace timeseries
}  // namespace elitenet

#endif  // ELITENET_TIMESERIES_PELT_H_

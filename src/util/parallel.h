// Deterministic parallel execution primitives.
//
// The contract every caller relies on: *results are bit-identical for any
// thread count, including 1*. Two rules make that possible:
//
//   1. Work is partitioned into chunks whose boundaries depend only on the
//      input range and grain — never on the number of threads (auto grain
//      targets a fixed chunk count, not a per-thread split). Chunks are
//      claimed dynamically (an atomic cursor), so scheduling is free to
//      vary, but what each chunk computes is fixed.
//   2. Reductions combine per-chunk partials sequentially in chunk order
//      (ParallelReduce), so floating-point summation order is fixed.
//
// Randomized kernels keep determinism by giving each chunk (or each item)
// its own RNG substream derived from a base seed and the chunk index — see
// util::SubstreamSeed in util/rng.h.
//
// The global thread count defaults to std::thread::hardware_concurrency,
// can be overridden by the ELITENET_THREADS environment variable, and is
// adjustable at runtime via SetThreadCount (bench flag: --threads=).

#ifndef ELITENET_UTIL_PARALLEL_H_
#define ELITENET_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace elitenet {
namespace util {

/// Effective global thread count (always >= 1).
int ThreadCount();

/// Upper bound accepted for thread-count overrides; larger requests are
/// rejected as misconfiguration (no machine this library targets has more
/// hardware threads, and a pool that size would only thrash).
inline constexpr int kMaxThreads = 1024;

/// Parses a thread-count override (the ELITENET_THREADS format): an
/// optionally whitespace-prefixed base-10 integer in [1, kMaxThreads].
/// Anything else — empty, non-numeric, trailing junk ("8x", "3.5"), zero,
/// negative, or out of range (including values that overflow long) —
/// returns `fallback`, so a typo degrades to the automatic default
/// instead of silently misbehaving.
int ParseThreadCount(const char* text, int fallback);

/// Sets the global thread count used by ParallelFor/ParallelReduce.
/// n <= 0 restores the automatic default (ELITENET_THREADS env var if set,
/// else hardware_concurrency). Do not call concurrently with running
/// parallel loops.
void SetThreadCount(int n);

/// True while the calling thread is executing inside a pool task; nested
/// ParallelFor calls detect this and collapse to serial execution.
bool InParallelRegion();

/// The chunk width ParallelFor/ParallelReduce use for a range of `range`
/// indices. grain > 0 is honored as-is; grain == 0 selects an automatic
/// width targeting a fixed chunk count (64), so chunk boundaries never
/// depend on the thread count.
size_t EffectiveGrain(size_t range, size_t grain);

/// A fixed-size pool of worker threads executing indexed task batches.
/// The pool behind ParallelFor is a process-global singleton; standalone
/// instances exist for tests and special-purpose schedulers.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in
  /// Run, so `threads == 1` spawns none). Requires threads >= 1.
  explicit ThreadPool(int threads);

  /// Joins all workers. Must not be called while a Run is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes task(i) for every i in [0, num_tasks), distributing indices
  /// across the pool plus the calling thread; blocks until all complete.
  /// If tasks throw, the exception from the *lowest* throwing index is
  /// rethrown (a deterministic choice); the rest are discarded.
  ///
  /// Calls from inside a pool task run inline on the calling thread, so
  /// nested parallelism degrades to serial instead of deadlocking.
  void Run(size_t num_tasks, const std::function<void(size_t)>& task);

 private:
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t num_tasks = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::mutex error_mutex;
    size_t error_index = 0;
    std::exception_ptr error;
  };

  // `slot` identifies the participating thread for scheduler metrics:
  // 0 is the thread that called Run, workers are 1..threads-1.
  void WorkerLoop(int slot);
  static void RunShard(Batch* batch, int slot);
  void RunSerial(size_t num_tasks, const std::function<void(size_t)>& task);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;   // non-null while a Run is in flight
  uint64_t generation_ = 0;  // bumped per Run so workers join each batch once
  size_t active_workers_ = 0;
  bool shutdown_ = false;
};

/// Chunked parallel loop over [begin, end). `body(chunk_begin, chunk_end)`
/// is invoked once per chunk; chunks are EffectiveGrain(end - begin, grain)
/// indices wide (the last chunk may be short). Exceptions propagate (lowest
/// chunk wins). Runs serially — over identical chunk boundaries — when
/// ThreadCount() == 1, when there is a single chunk, or when called from
/// inside another parallel region.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Deterministic map-reduce: `map(chunk_begin, chunk_end) -> T` runs per
/// chunk in parallel, then partials are folded left-to-right in chunk
/// order with `reduce(acc, partial) -> T`, starting from `init`. The fold
/// order is fixed, so floating-point results are bit-identical for any
/// thread count.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T init, MapFn map,
                 ReduceFn reduce) {
  if (begin >= end) return init;
  const size_t range = end - begin;
  const size_t step = EffectiveGrain(range, grain);
  const size_t chunks = (range + step - 1) / step;
  std::vector<T> partial(chunks);
  ParallelFor(begin, end, step, [&](size_t lo, size_t hi) {
    partial[(lo - begin) / step] = map(lo, hi);
  });
  T acc = std::move(init);
  for (size_t c = 0; c < chunks; ++c) {
    acc = reduce(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_PARALLEL_H_

#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace elitenet {
namespace util {

LinearHistogram::LinearHistogram(double min, double max, int num_bins)
    : min_(min), max_(max) {
  EN_CHECK(max > min);
  EN_CHECK(num_bins > 0);
  width_ = (max - min) / num_bins;
  counts_.assign(num_bins, 0);
}

void LinearHistogram::Add(double x) { AddN(x, 1); }

void LinearHistogram::AddN(double x, uint64_t n) {
  total_ += n;
  if (x < min_) {
    underflow_ += n;
    return;
  }
  if (x >= max_) {
    overflow_ += n;
    return;
  }
  int idx = static_cast<int>((x - min_) / width_);
  idx = std::min(idx, static_cast<int>(counts_.size()) - 1);
  counts_[idx] += n;
}

std::vector<HistogramBin> LinearHistogram::bins() const {
  std::vector<HistogramBin> out;
  out.reserve(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    HistogramBin b;
    b.lo = min_ + width_ * static_cast<double>(i);
    b.hi = b.lo + width_;
    b.count = counts_[i];
    b.fraction = total_ ? static_cast<double>(b.count) / total_ : 0.0;
    out.push_back(b);
  }
  return out;
}

LogHistogram::LogHistogram(double min, double ratio, int num_bins)
    : min_(min) {
  EN_CHECK(min > 0.0);
  EN_CHECK(ratio > 1.0);
  EN_CHECK(num_bins > 0);
  log_min_ = std::log(min);
  log_ratio_ = std::log(ratio);
  counts_.assign(num_bins, 0);
}

void LogHistogram::Add(double x) {
  ++total_;
  if (x < min_) {
    ++zero_;
    return;
  }
  int idx = static_cast<int>((std::log(x) - log_min_) / log_ratio_);
  if (idx < 0) idx = 0;
  if (idx >= static_cast<int>(counts_.size())) {
    ++overflow_;
    return;
  }
  counts_[idx] += 1;
}

std::vector<HistogramBin> LogHistogram::bins() const {
  std::vector<HistogramBin> out;
  out.reserve(counts_.size() + 1);
  HistogramBin zero_bin;
  zero_bin.lo = 0.0;
  zero_bin.hi = 0.0;
  zero_bin.count = zero_;
  zero_bin.fraction = total_ ? static_cast<double>(zero_) / total_ : 0.0;
  out.push_back(zero_bin);
  for (size_t i = 0; i < counts_.size(); ++i) {
    HistogramBin b;
    b.lo = std::exp(log_min_ + log_ratio_ * static_cast<double>(i));
    b.hi = std::exp(log_min_ + log_ratio_ * static_cast<double>(i + 1));
    b.count = counts_[i];
    b.fraction = total_ ? static_cast<double>(b.count) / total_ : 0.0;
    out.push_back(b);
  }
  if (overflow_ > 0) {
    HistogramBin b;
    b.lo = std::exp(log_min_ + log_ratio_ * static_cast<double>(counts_.size()));
    b.hi = std::numeric_limits<double>::infinity();
    b.count = overflow_;
    b.fraction = total_ ? static_cast<double>(overflow_) / total_ : 0.0;
    out.push_back(b);
  }
  return out;
}

namespace {

std::string Bar(uint64_t count) {
  if (count == 0) return "";
  int len = static_cast<int>(std::lround(8.0 * std::log10(1.0 + count)));
  len = std::max(len, 1);
  return std::string(static_cast<size_t>(len), '#');
}

}  // namespace

std::string LogHistogram::ToAsciiChart(const std::string& value_label,
                                       bool keep_empty) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "  %16s %12s  (bar ~ log10 count)\n",
                value_label.c_str(), "count");
  out += line;
  for (const HistogramBin& b : bins()) {
    if (b.count == 0 && !keep_empty) continue;
    if (b.lo == 0.0 && b.hi == 0.0) {
      std::snprintf(line, sizeof(line), "  %16s %12llu  %s\n", "0",
                    static_cast<unsigned long long>(b.count),
                    Bar(b.count).c_str());
    } else {
      char range[64];
      std::snprintf(range, sizeof(range), "[%.3g, %.3g)", b.lo, b.hi);
      std::snprintf(line, sizeof(line), "  %16s %12llu  %s\n", range,
                    static_cast<unsigned long long>(b.count),
                    Bar(b.count).c_str());
    }
    out += line;
  }
  return out;
}

void IntHistogram::Add(uint64_t value, uint64_t count) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += count;
  total_ += count;
}

uint64_t IntHistogram::max_value() const {
  for (size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] > 0) return i - 1;
  }
  return 0;
}

uint64_t IntHistogram::CountOf(uint64_t value) const {
  return value < counts_.size() ? counts_[value] : 0;
}

double IntHistogram::Mean() const {
  EN_CHECK(total_ > 0);
  double sum = 0.0;
  for (size_t v = 0; v < counts_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

uint64_t IntHistogram::Quantile(double q) const {
  EN_CHECK(total_ > 0);
  EN_CHECK(q > 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  uint64_t cum = 0;
  for (size_t v = 0; v < counts_.size(); ++v) {
    cum += counts_[v];
    if (static_cast<double>(cum) >= target) return v;
  }
  return max_value();
}

std::string IntHistogram::ToAsciiChart(const std::string& value_label) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "  %10s %14s  (bar ~ log10 count)\n",
                value_label.c_str(), "pairs");
  out += line;
  const uint64_t maxv = max_value();
  for (uint64_t v = 0; v <= maxv; ++v) {
    const uint64_t c = CountOf(v);
    std::snprintf(line, sizeof(line), "  %10llu %14llu  %s\n",
                  static_cast<unsigned long long>(v),
                  static_cast<unsigned long long>(c), Bar(c).c_str());
    out += line;
  }
  return out;
}

}  // namespace util
}  // namespace elitenet

#include "util/parallel.h"

#include <cstdlib>
#include <memory>

#include "util/check.h"

namespace elitenet {
namespace util {

namespace {

int AutoThreadCount() {
  if (const char* env = std::getenv("ELITENET_THREADS");
      env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

std::atomic<int> g_thread_count{0};  // 0 = not yet resolved

thread_local bool tl_in_parallel = false;

// RAII marker for pool shards and serial fallbacks.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard() : prev_(tl_in_parallel) { tl_in_parallel = true; }
  ~ParallelRegionGuard() { tl_in_parallel = prev_; }

 private:
  bool prev_;
};

}  // namespace

int ThreadCount() {
  int v = g_thread_count.load(std::memory_order_relaxed);
  if (v == 0) {
    v = AutoThreadCount();
    g_thread_count.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetThreadCount(int n) {
  g_thread_count.store(n <= 0 ? AutoThreadCount() : n,
                       std::memory_order_relaxed);
}

bool InParallelRegion() { return tl_in_parallel; }

size_t EffectiveGrain(size_t range, size_t grain) {
  if (grain > 0) return grain;
  // Fixed chunk-count target: boundaries must not depend on the thread
  // count or determinism across thread counts would break. 64 chunks give
  // dynamic scheduling enough slack to balance skewed chunks.
  constexpr size_t kTargetChunks = 64;
  const size_t g = (range + kTargetChunks - 1) / kTargetChunks;
  return g == 0 ? 1 : g;
}

ThreadPool::ThreadPool(int threads) : num_threads_(threads) {
  EN_CHECK(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunShard(Batch* batch) {
  ParallelRegionGuard guard;
  for (;;) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->num_tasks) break;
    try {
      (*batch->task)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->error_mutex);
      if (batch->error == nullptr || i < batch->error_index) {
        batch->error = std::current_exception();
        batch->error_index = i;
      }
    }
    batch->completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (batch_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
      ++active_workers_;
    }
    RunShard(batch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunSerial(size_t num_tasks,
                           const std::function<void(size_t)>& task) {
  ParallelRegionGuard guard;
  // Ascending order: the first exception is the lowest-index one, matching
  // the parallel path's contract.
  for (size_t i = 0; i < num_tasks; ++i) task(i);
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  if (num_threads_ == 1 || num_tasks == 1 || tl_in_parallel) {
    RunSerial(num_tasks, task);
    return;
  }

  Batch batch;
  batch.task = &task;
  batch.num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread works too; with the dynamic cursor it simply claims
  // whatever the workers have not.
  RunShard(&batch);

  {
    // Wait until every task ran AND every worker left the shard loop —
    // workers briefly touch `batch` after the last task completes, and
    // `batch` lives on this stack frame.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch.completed.load(std::memory_order_acquire) == num_tasks &&
             active_workers_ == 0;
    });
    batch_ = nullptr;
  }
  if (batch.error != nullptr) std::rethrow_exception(batch.error);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t range = end - begin;
  const size_t step = EffectiveGrain(range, grain);
  const size_t chunks = (range + step - 1) / step;

  const auto run_chunk = [&](size_t c) {
    const size_t lo = begin + c * step;
    const size_t hi = lo + step < end ? lo + step : end;
    body(lo, hi);
  };

  const int threads = ThreadCount();
  if (threads == 1 || chunks == 1 || tl_in_parallel) {
    ParallelRegionGuard guard;
    for (size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }

  // Process-global pool, rebuilt when the configured thread count changes.
  // Guarded by a mutex: concurrent top-level ParallelFor calls from
  // different user threads serialize on pool access rather than racing.
  static std::mutex* pool_mutex = new std::mutex;
  static std::unique_ptr<ThreadPool>* pool = new std::unique_ptr<ThreadPool>;
  std::lock_guard<std::mutex> lock(*pool_mutex);
  if (*pool == nullptr || (*pool)->num_threads() != threads) {
    pool->reset();  // join the old pool before spawning the new one
    *pool = std::make_unique<ThreadPool>(threads);
  }
  (*pool)->Run(chunks, run_chunk);
}

}  // namespace util
}  // namespace elitenet

#include "util/parallel.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/check.h"
#include "util/metrics.h"

namespace elitenet {
namespace util {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-shard tally flushed into the registry once per Run, so the hot loop
// touches no shared state beyond the task cursor. `slot` 0 is the calling
// thread; workers are 1..threads-1.
void RecordShardMetrics(int slot, uint64_t chunks, uint64_t busy_ns) {
  if (chunks == 0) return;
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("parallel.chunks_claimed")->Add(chunks);
  reg.GetCounter("parallel.busy_ns")->Add(busy_ns);
  const std::string prefix = "parallel.thread." + std::to_string(slot);
  reg.GetCounter(prefix + ".chunks")->Add(chunks);
  reg.GetCounter(prefix + ".busy_ns")->Add(busy_ns);
}

int AutoThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  const int fallback = hc == 0 ? 1 : static_cast<int>(hc);
  if (const char* env = std::getenv("ELITENET_THREADS");
      env != nullptr && *env != '\0') {
    const int parsed = ParseThreadCount(env, -1);
    if (parsed > 0) return parsed;
    // Warn once: a silent fallback would make "why is this single-
    // threaded?" undiagnosable, the failure the old atoi parsing had.
    static bool warned = [env, fallback] {
      std::fprintf(stderr,
                   "elitenet: ignoring invalid ELITENET_THREADS=\"%s\" "
                   "(want an integer in [1, %d]); using %d\n",
                   env, kMaxThreads, fallback);
      return true;
    }();
    (void)warned;
  }
  return fallback;
}

std::atomic<int> g_thread_count{0};  // 0 = not yet resolved

thread_local bool tl_in_parallel = false;

// RAII marker for pool shards and serial fallbacks.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard() : prev_(tl_in_parallel) { tl_in_parallel = true; }
  ~ParallelRegionGuard() { tl_in_parallel = prev_; }

 private:
  bool prev_;
};

}  // namespace

int ParseThreadCount(const char* text, int fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text) return fallback;             // no digits at all
  if (*end != '\0') return fallback;            // trailing junk ("8x", "3.5")
  if (errno == ERANGE) return fallback;         // overflowed long
  if (value < 1 || value > kMaxThreads) return fallback;
  return static_cast<int>(value);
}

int ThreadCount() {
  int v = g_thread_count.load(std::memory_order_relaxed);
  if (v == 0) {
    v = AutoThreadCount();
    g_thread_count.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetThreadCount(int n) {
  g_thread_count.store(n <= 0 ? AutoThreadCount() : n,
                       std::memory_order_relaxed);
}

bool InParallelRegion() { return tl_in_parallel; }

size_t EffectiveGrain(size_t range, size_t grain) {
  if (grain > 0) return grain;
  // Fixed chunk-count target: boundaries must not depend on the thread
  // count or determinism across thread counts would break. 64 chunks give
  // dynamic scheduling enough slack to balance skewed chunks.
  constexpr size_t kTargetChunks = 64;
  const size_t g = (range + kTargetChunks - 1) / kTargetChunks;
  return g == 0 ? 1 : g;
}

ThreadPool::ThreadPool(int threads) : num_threads_(threads) {
  EN_CHECK(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this, slot = i + 1] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunShard(Batch* batch, int slot) {
  ParallelRegionGuard guard;
  // Metrics observe scheduling (chunks claimed, busy time) without
  // influencing it: the clock reads happen outside the task cursor
  // protocol, and nothing below reads a metric back.
  const bool metrics = MetricsEnabled();
  uint64_t claimed = 0;
  uint64_t busy_ns = 0;
  for (;;) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->num_tasks) break;
    const uint64_t t0 = metrics ? NowNs() : 0;
    try {
      (*batch->task)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch->error_mutex);
      if (batch->error == nullptr || i < batch->error_index) {
        batch->error = std::current_exception();
        batch->error_index = i;
      }
    }
    if (metrics) {
      busy_ns += NowNs() - t0;
      ++claimed;
    }
    batch->completed.fetch_add(1, std::memory_order_acq_rel);
  }
  if (metrics) RecordShardMetrics(slot, claimed, busy_ns);
}

void ThreadPool::WorkerLoop(int slot) {
  uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (batch_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
      ++active_workers_;
    }
    RunShard(batch, slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunSerial(size_t num_tasks,
                           const std::function<void(size_t)>& task) {
  ParallelRegionGuard guard;
  const bool metrics = MetricsEnabled();
  const uint64_t t0 = metrics ? NowNs() : 0;
  // Ascending order: the first exception is the lowest-index one, matching
  // the parallel path's contract.
  for (size_t i = 0; i < num_tasks; ++i) task(i);
  if (metrics) RecordShardMetrics(/*slot=*/0, num_tasks, NowNs() - t0);
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  if (num_threads_ == 1 || num_tasks == 1 || tl_in_parallel) {
    RunSerial(num_tasks, task);
    return;
  }

  Batch batch;
  batch.task = &task;
  batch.num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread works too; with the dynamic cursor it simply claims
  // whatever the workers have not.
  RunShard(&batch, /*slot=*/0);

  {
    // Wait until every task ran AND every worker left the shard loop —
    // workers briefly touch `batch` after the last task completes, and
    // `batch` lives on this stack frame.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch.completed.load(std::memory_order_acquire) == num_tasks &&
             active_workers_ == 0;
    });
    batch_ = nullptr;
  }
  if (batch.error != nullptr) std::rethrow_exception(batch.error);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t range = end - begin;
  const size_t step = EffectiveGrain(range, grain);
  const size_t chunks = (range + step - 1) / step;

  const bool metrics = MetricsEnabled();
  if (metrics) {
    ELITENET_COUNT("parallel.for_calls", 1);
    ELITENET_COUNT("parallel.chunks", chunks);
    ELITENET_HISTOGRAM("parallel.grain", step);
  }
  const uint64_t t0 = metrics ? NowNs() : 0;

  const auto run_chunk = [&](size_t c) {
    const size_t lo = begin + c * step;
    const size_t hi = lo + step < end ? lo + step : end;
    body(lo, hi);
  };

  const int threads = ThreadCount();
  if (threads == 1 || chunks == 1 || tl_in_parallel) {
    {
      ParallelRegionGuard guard;
      for (size_t c = 0; c < chunks; ++c) run_chunk(c);
    }
    if (metrics) {
      const uint64_t wall = NowNs() - t0;
      RecordShardMetrics(/*slot=*/0, chunks, wall);
      ELITENET_COUNT("parallel.run_ns", wall);
    }
    return;
  }

  // Process-global pool, rebuilt when the configured thread count changes.
  // Guarded by a mutex: concurrent top-level ParallelFor calls from
  // different user threads serialize on pool access rather than racing.
  static std::mutex* pool_mutex = new std::mutex;
  static std::unique_ptr<ThreadPool>* pool = new std::unique_ptr<ThreadPool>;
  std::lock_guard<std::mutex> lock(*pool_mutex);
  if (*pool == nullptr || (*pool)->num_threads() != threads) {
    pool->reset();  // join the old pool before spawning the new one
    *pool = std::make_unique<ThreadPool>(threads);
  }
  (*pool)->Run(chunks, run_chunk);
  if (metrics) ELITENET_COUNT("parallel.run_ns", NowNs() - t0);
}

}  // namespace util
}  // namespace elitenet

// Minimal CSV writer: benches dump every reproduced figure/table as CSV
// next to their stdout report so the series can be re-plotted.

#ifndef ELITENET_UTIL_CSV_H_
#define ELITENET_UTIL_CSV_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace util {

/// Streaming CSV writer with RFC-4180-style quoting of fields that contain
/// commas, quotes, or newlines.
class CsvWriter {
 public:
  CsvWriter() = default;
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Opens `path` for writing (truncates).
  Status Open(const std::string& path);

  /// Writes one row; fields are quoted as needed.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes. Safe to call multiple times.
  Status Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// Escapes one CSV field per RFC 4180 (exposed for tests).
std::string CsvEscape(const std::string& field);

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_CSV_H_

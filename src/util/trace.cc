#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace elitenet {
namespace util {

namespace {

std::atomic<bool> g_tracing_enabled{false};
std::once_flag g_trace_env_once;

// ELITENET_TRACE=<path>: enable tracing now and dump the Chrome JSON to
// <path> when the process exits. Resolved once, on the first
// TracingEnabled() call.
void ResolveTraceEnv() {
  const char* env = std::getenv("ELITENET_TRACE");
  if (env == nullptr || *env == '\0') return;
  static std::string* path = new std::string(env);
  g_tracing_enabled.store(true, std::memory_order_relaxed);
  std::atexit([] {
    const Status s = TraceRecorder::Global().WriteChromeJson(*path);
    if (!s.ok()) {
      std::fprintf(stderr, "elitenet: trace dump failed: %s\n",
                   s.ToString().c_str());
    }
  });
}

// Per-thread span bookkeeping: a small sequential id (Chrome traces key
// rows by tid) and the stack of open span indices for parent links.
struct ThreadTraceState {
  uint32_t id;
  std::vector<int64_t> open_spans;
};

ThreadTraceState& LocalThreadState() {
  static std::atomic<uint32_t> next_id{0};
  thread_local ThreadTraceState state{
      next_id.fetch_add(1, std::memory_order_relaxed), {}};
  return state;
}

// JSON string escaping for span names (quotes, backslashes, control chars).
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string FormatDuration(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  }
  return buf;
}

}  // namespace

namespace {
// The innermost SpanCapture installed on this thread (nullptr = none).
thread_local SpanCapture* g_active_capture = nullptr;
}  // namespace

SpanCapture::SpanCapture(size_t max_spans)
    : epoch_(std::chrono::steady_clock::now()),
      max_spans_(max_spans),
      prev_(g_active_capture) {
  spans_.reserve(max_spans < 64 ? max_spans : 64);
  g_active_capture = this;
}

SpanCapture::~SpanCapture() { g_active_capture = prev_; }

SpanCapture* SpanCapture::Active() { return g_active_capture; }

int32_t SpanCapture::Begin(const char* name) {
  if (spans_.size() >= max_spans_) {
    truncated_ = true;
    return -1;
  }
  CapturedSpan span;
  span.name = name;
  span.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  if (!open_.empty()) {
    span.parent = open_.back();
    span.depth = static_cast<int32_t>(open_.size());
  }
  const int32_t index = static_cast<int32_t>(spans_.size());
  spans_.push_back(span);
  open_.push_back(index);
  return index;
}

void SpanCapture::End(int32_t index) {
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) return;
  if (!open_.empty() && open_.back() == index) open_.pop_back();
  const uint64_t end_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  CapturedSpan& span = spans_[static_cast<size_t>(index)];
  span.duration_ns = end_ns > span.start_ns ? end_ns - span.start_ns : 0;
}

std::vector<CapturedSpan> SpanCapture::Take() {
  std::vector<CapturedSpan> out = std::move(spans_);
  spans_.clear();
  open_.clear();
  return out;
}

bool TracingEnabled() {
  std::call_once(g_trace_env_once, ResolveTraceEnv);
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  std::call_once(g_trace_env_once, ResolveTraceEnv);
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRecorder::BeginSpan(const char* name) {
  const auto now = std::chrono::steady_clock::now();
  ThreadTraceState& ts = LocalThreadState();

  TraceEvent event;
  event.name = name;
  event.thread_id = ts.id;
  if (!ts.open_spans.empty()) {
    event.parent = static_cast<int32_t>(ts.open_spans.back());
    event.depth = static_cast<int32_t>(ts.open_spans.size());
  }

  int64_t index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    event.start_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
            .count());
    index = static_cast<int64_t>(events_.size());
    events_.push_back(std::move(event));
  }
  ts.open_spans.push_back(index);
  return index;
}

void TraceRecorder::EndSpan(int64_t index) {
  const auto now = std::chrono::steady_clock::now();
  ThreadTraceState& ts = LocalThreadState();
  // Spans close in LIFO order per thread (RAII guarantees it); tolerate a
  // recorder Clear() having dropped the entry in between.
  if (!ts.open_spans.empty() && ts.open_spans.back() == index) {
    ts.open_spans.pop_back();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < 0 || static_cast<size_t>(index) >= events_.size()) return;
  const uint64_t end_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  TraceEvent& event = events_[static_cast<size_t>(index)];
  event.duration_ns =
      end_ns > event.start_ns ? end_ns - event.start_ns : 0;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 128);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[128];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"cat\":\"elitenet\",\"ph\":\"X\",\"pid\":0";
    std::snprintf(buf, sizeof(buf), ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                  e.thread_id, static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3);
    out += buf;
  }
  out += "]}\n";
  return out;
}

std::string TraceRecorder::ToTextTree() const {
  std::vector<TraceEvent> events = snapshot();
  // Stable order: by thread, then start time (events were appended in
  // begin order, which interleaves threads).
  std::vector<size_t> order(events.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (events[a].thread_id != events[b].thread_id) {
      return events[a].thread_id < events[b].thread_id;
    }
    return events[a].start_ns < events[b].start_ns;
  });

  std::string out;
  uint32_t current_thread = UINT32_MAX;
  for (size_t idx : order) {
    const TraceEvent& e = events[idx];
    if (e.thread_id != current_thread) {
      current_thread = e.thread_id;
      out += "thread " + std::to_string(current_thread) + "\n";
    }
    out.append(2 + 2 * static_cast<size_t>(e.depth), ' ');
    out += e.name;
    out += "  ";
    out += FormatDuration(e.duration_ns);
    out += '\n';
  }
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output: " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace util
}  // namespace elitenet

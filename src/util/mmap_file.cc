#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace elitenet {
namespace util {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open for mapping: " + path + ": " +
                           std::strerror(errno));
  }
  struct ::stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("fstat failed: " + path + ": " +
                           std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("not a regular file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // not needed past this point either way.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path + ": " +
                           std::strerror(errno));
  }
  return MmapFile(static_cast<const uint8_t*>(addr), size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace util
}  // namespace elitenet

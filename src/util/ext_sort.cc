#include "util/ext_sort.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace elitenet {
namespace util {

namespace {

/// Read block per run during the merge: 128Ki records = 1 MiB. Small
/// enough that even hundreds of runs merge in tens of MiB; large enough
/// that the merge is not syscall-bound.
constexpr size_t kMergeBlockRecords = 128 * 1024;

/// Floor for the spill-run size. A budget below this still works — it
/// just spills 64 KiB runs — so pathological test budgets cannot create
/// millions of one-record files.
constexpr size_t kMinRunRecords = 8 * 1024;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

ExtSorter::ExtSorter(ExtSortOptions options) : options_(std::move(options)) {
  if (options_.budget_bytes == 0) {
    run_capacity_ = SIZE_MAX;  // unbounded: pure in-memory sort
  } else {
    run_capacity_ = std::max<size_t>(kMinRunRecords,
                                     options_.budget_bytes / sizeof(uint64_t));
    // Exact reservation: vector doubling would otherwise overshoot the
    // budget by up to 2x right before a spill.
    buffer_.reserve(run_capacity_);
  }
}

ExtSorter::~ExtSorter() {
  for (const std::string& path : spill_paths_) {
    std::remove(path.c_str());
  }
}

Status ExtSorter::Add(uint64_t record) { return AddBatch({&record, 1}); }

Status ExtSorter::AddBatch(std::span<const uint64_t> records) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) {
    return Status::FailedPrecondition("Add after Finish");
  }
  for (uint64_t record : records) {
    buffer_.push_back(record);
    ++total_records_;
    if (buffer_.size() >= run_capacity_) {
      EN_RETURN_IF_ERROR(SpillLocked());
    }
  }
  return Status::OK();
}

Status ExtSorter::SpillLocked() {
  std::sort(buffer_.begin(), buffer_.end());

  const std::string dir = options_.temp_dir.empty() ? "." : options_.temp_dir;
  const std::string path = dir + "/" + options_.temp_prefix + ".run" +
                           std::to_string(spill_paths_.size()) + ".tmp";
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    return Status::IoError("cannot open spill run for writing: " + path);
  }
  if (std::fwrite(buffer_.data(), sizeof(uint64_t), buffer_.size(), f.get()) !=
      buffer_.size()) {
    std::remove(path.c_str());
    return Status::IoError("short write to spill run: " + path);
  }
  if (std::fflush(f.get()) != 0) {
    std::remove(path.c_str());
    return Status::IoError("flush failed for spill run: " + path);
  }
  spill_paths_.push_back(path);
  buffer_.clear();
  return Status::OK();
}

Status ExtSorter::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return Status::OK();
  std::sort(buffer_.begin(), buffer_.end());
  tail_run_ = std::move(buffer_);
  buffer_ = {};
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Merge stream

struct ExtSorter::Stream::RunReader {
  // File-backed run (block-buffered)...
  std::unique_ptr<std::FILE, FileCloser> file;
  std::string path;
  uint64_t remaining = 0;  // records the run promised but has not yielded
  std::vector<uint64_t> block;
  size_t block_pos = 0;
  // ...or the in-memory tail run.
  const std::vector<uint64_t>* mem = nullptr;
  size_t mem_pos = 0;

  uint64_t head = 0;
  bool exhausted = false;
};

ExtSorter::Stream::Stream(const ExtSorter* parent) : parent_(parent) {}
ExtSorter::Stream::~Stream() = default;
ExtSorter::Stream::Stream(Stream&&) noexcept = default;
ExtSorter::Stream& ExtSorter::Stream::operator=(Stream&&) noexcept = default;

Result<ExtSorter::Stream> ExtSorter::Scan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!finished_) {
    return Status::FailedPrecondition("Scan before Finish");
  }
  Stream s(this);
  for (const std::string& path : spill_paths_) {
    auto reader = std::make_unique<Stream::RunReader>();
    reader->file.reset(std::fopen(path.c_str(), "rb"));
    if (!reader->file) {
      return Status::IoError("cannot reopen spill run: " + path);
    }
    reader->path = path;
    reader->remaining = run_capacity_;  // every disk run is exactly full
    s.readers_.push_back(std::move(reader));
  }
  if (!tail_run_.empty()) {
    auto reader = std::make_unique<Stream::RunReader>();
    reader->mem = &tail_run_;
    s.readers_.push_back(std::move(reader));
  }
  s.num_runs_ = s.readers_.size();
  for (size_t run = 0; run < s.num_runs_; ++run) {
    if (!s.RefillReader(run) && !s.status_.ok()) {
      return s.status_;  // a run truncated to nothing is visible up front
    }
  }
  s.BuildLoserTree();
  return s;
}

/// Loads the next record of `run` into its head slot. Returns false when
/// the run is exhausted or a read fails (status_ tells which).
bool ExtSorter::Stream::RefillReader(size_t run) {
  RunReader& r = *readers_[run];
  if (r.exhausted) return false;
  if (r.mem != nullptr) {
    if (r.mem_pos >= r.mem->size()) {
      r.exhausted = true;
      return false;
    }
    r.head = (*r.mem)[r.mem_pos++];
    return true;
  }
  if (r.block_pos >= r.block.size()) {
    if (r.remaining == 0) {
      r.exhausted = true;
      return false;
    }
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(r.remaining, kMergeBlockRecords));
    r.block.resize(want);
    const size_t got =
        std::fread(r.block.data(), sizeof(uint64_t), want, r.file.get());
    if (got != want) {
      r.exhausted = true;
      status_ = Status::Corruption("truncated spill run mid-merge: " + r.path);
      return false;
    }
    r.remaining -= want;
    r.block_pos = 0;
  }
  r.head = r.block[r.block_pos++];
  return true;
}

/// True when run `a` should win the match against run `b`. Exhausted runs
/// always lose; equal keys break toward the lower run index so every
/// match is a total order (the records are identical either way).
bool ExtSorter::Stream::BeatsRun(uint32_t a, uint32_t b) const {
  const bool a_live = a < num_runs_ && !readers_[a]->exhausted;
  const bool b_live = b < num_runs_ && !readers_[b]->exhausted;
  if (!a_live || !b_live) return a_live;
  const uint64_t ka = readers_[a]->head;
  const uint64_t kb = readers_[b]->head;
  if (ka != kb) return ka < kb;
  return a < b;
}

void ExtSorter::Stream::BuildLoserTree() {
  size_t p = 1;
  while (p < std::max<size_t>(num_runs_, 1)) p <<= 1;
  leaf_base_ = p;
  tree_.assign(p, 0);
  // Play every match bottom-up: winners propagate in `node`, losers stay
  // in the tree. node[p + i] is virtual run i (runs >= num_runs_ are
  // permanently exhausted placeholders).
  std::vector<uint32_t> node(2 * p);
  for (size_t i = 0; i < p; ++i) node[p + i] = static_cast<uint32_t>(i);
  for (size_t i = p; i-- > 1;) {
    const uint32_t a = node[2 * i];
    const uint32_t b = node[2 * i + 1];
    const bool a_wins = BeatsRun(a, b);
    node[i] = a_wins ? a : b;
    tree_[i] = a_wins ? b : a;
  }
  tree_[0] = node[1];
  if (num_runs_ == 0) done_ = true;
}

/// Replays matches from run `run`'s leaf to the root after its head
/// changed (advanced or exhausted).
void ExtSorter::Stream::ReplayFrom(size_t run) {
  uint32_t winner = static_cast<uint32_t>(run);
  for (size_t i = (leaf_base_ + run) >> 1; i >= 1; i >>= 1) {
    if (BeatsRun(tree_[i], winner)) {
      std::swap(tree_[i], winner);
    }
  }
  tree_[0] = winner;
}

bool ExtSorter::Stream::Next(uint64_t* record) {
  if (done_ || !status_.ok()) return false;
  const uint32_t winner = tree_[0];
  if (winner >= num_runs_ || readers_[winner]->exhausted) {
    done_ = true;
    return false;
  }
  *record = readers_[winner]->head;
  if (!RefillReader(winner) && !status_.ok()) {
    done_ = true;
    return false;
  }
  ReplayFrom(winner);
  return true;
}

}  // namespace util
}  // namespace elitenet

// Small string helpers shared by the text-mining and IO modules.

#ifndef ELITENET_UTIL_STRING_UTILS_H_
#define ELITENET_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace elitenet {
namespace util {

/// Splits on a single delimiter character. Empty fields are preserved
/// ("a,,b" -> {"a", "", "b"}); an empty input yields one empty field.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string AsciiToLower(std::string_view s);

/// True if `s` begins with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins elements with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Parses a non-negative integer; returns false on any non-digit or
/// overflow. Used by the edge-list reader.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Parses a double via strtod over the full token; returns false on
/// trailing garbage or empty input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_STRING_UTILS_H_

// Per-request deadline plumbing for the serving layer.
//
// A Deadline is an absolute steady_clock point (or infinity) that travels
// with a request from submission through execution. Long-running kernels
// poll Expired() at natural checkpoints (a BFS level, a batch of
// expansions) and degrade gracefully — return the best bound found so far
// with a degraded flag — instead of blowing the latency budget or failing.
//
// Deadlines never feed back into *what* a completed computation returns:
// a query that finishes in time produces the same bytes whether its
// deadline was 1 ms or infinite, so the serving layer's byte-identical
// determinism contract (bench_serving) only depends on queries that are
// given enough time, never on clock readings.

#ifndef ELITENET_UTIL_DEADLINE_H_
#define ELITENET_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace elitenet {
namespace util {

/// An absolute point in time a request must not run past. Cheap to copy.
class Deadline {
 public:
  /// No deadline: Expired() is always false.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  /// Expires `micros` microseconds from now. 0 is already expired.
  static Deadline After(uint64_t micros) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::microseconds(micros);
    return d;
  }

  bool infinite() const { return infinite_; }

  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Microseconds until expiry; 0 when expired, UINT64_MAX when infinite.
  uint64_t RemainingMicros() const {
    if (infinite_) return UINT64_MAX;
    const auto left = at_ - std::chrono::steady_clock::now();
    if (left <= std::chrono::steady_clock::duration::zero()) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(left).count());
  }

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_DEADLINE_H_

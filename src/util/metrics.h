// Named counters, gauges, and histograms for the study pipeline and the
// parallel scheduler.
//
//   ELITENET_COUNT("edges_emitted", n);      // monotonic add
//   ELITENET_GAUGE_SET("pagerank.iters", k); // last-write-wins value
//   ELITENET_HISTOGRAM("parallel.grain", g); // power-of-two bucketed
//
// Metrics are off by default. Enable programmatically
// (SetMetricsEnabled), through StudyConfig::metrics_path, or process-wide
// with ELITENET_METRICS=<path>, which also writes the JSON snapshot at
// process exit. Each macro call site caches its metric pointer in a
// function-local static, so the enabled path is one relaxed atomic load,
// one branch, and one relaxed atomic add; the disabled path is just the
// load and branch (measured well under 1% on hot kernels —
// bench_observability).
//
// Instruments record, they never decide: no metric value may feed back
// into computation, so the bit-identical determinism contract of
// util/parallel.h holds with metrics on or off (enforced by
// tests/parallel_determinism_test.cc). Scheduler metrics (chunks claimed
// per thread, busy time) are intentionally *about* nondeterministic
// scheduling; value-derived metrics (edge counts, replicate counts) are
// deterministic and tested as such.

#ifndef ELITENET_UTIL_METRICS_H_
#define ELITENET_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace util {

/// True when metric recording is on. One relaxed atomic load; the first
/// call also resolves the ELITENET_METRICS environment variable.
bool MetricsEnabled();

/// Turns metric recording on or off process-wide. Recorded values persist
/// across toggles; see MetricsRegistry::ResetValues.
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing counter. Lock-free.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins integer value. Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two bucketed distribution of non-negative integer samples:
/// bucket b counts samples whose bit width is b (bucket 0 holds zeros, so
/// bucket b >= 1 covers [2^(b-1), 2^b)). Coarse by design — grain sizes,
/// chunk widths, and queue depths only need order-of-magnitude shape —
/// which keeps Observe lock-free and allocation-free.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void Observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Mergeable log-linear quantile sketch for non-negative integer samples
/// (latencies in microseconds, queue waits, byte sizes).
///
/// Layout: values below 2^(kSubBucketBits+1) get exact unit-width buckets;
/// every octave above is split into 2^kSubBucketBits linear sub-buckets,
/// so a bucket's width is at most value / 2^kSubBucketBits. Quantile()
/// answers with the bucket midpoint, bounding the relative error by
/// 2^-(kSubBucketBits+1) (= 1/64 ≈ 1.6% at the default 5 sub-bucket
/// bits) — tight enough for p50/p95/p99 dashboards at O(1) memory,
/// unlike an unbounded sample vector. Merge adds another sketch's
/// buckets, so per-shard sketches aggregate exactly (bucket counts are
/// integers — merged-then-queried equals observed-centrally-then-
/// queried).
///
/// The bucket array is the ONLY state: Observe is a single relaxed
/// fetch_add (this sketch sits on the serving hot path, where every
/// extra atomic RMW is measurable — bench_observability's serving mode
/// holds the whole telemetry plane under 1% of QPS), and count/sum/max
/// are derived from the buckets at read time. count() is exact once
/// writers quiesce; SumEstimate()/MaxEstimate() carry the same <= 1/64
/// relative error as Quantile().
class QuantileSketch {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  /// Exact region [0, 2*kSubBuckets) plus kSubBuckets buckets for each of
  /// the (64 - kSubBucketBits - 1) remaining octaves of uint64 range.
  static constexpr size_t kNumBuckets =
      2 * kSubBuckets + (63 - kSubBucketBits) * kSubBuckets;

  /// Bucket holding `v`. Monotone in v; exact (unit width) below 64.
  static size_t BucketIndex(uint64_t v);
  /// Smallest value mapping to bucket `b`.
  static uint64_t BucketLowerBound(size_t b);
  /// Number of distinct values mapping to bucket `b`.
  static uint64_t BucketWidth(size_t b);

  void Observe(uint64_t v);
  /// Adds every bucket of `other` into this sketch.
  void Merge(const QuantileSketch& other);

  /// Total samples (sums the buckets; exact once writers quiesce).
  uint64_t count() const;
  /// Sum of samples estimated from bucket midpoints (<= 1/64 rel. error;
  /// exact when every sample was below 2*kSubBuckets).
  double SumEstimate() const;
  /// Upper bound of the highest non-empty bucket (>= the true max, within
  /// one bucket width of it). 0 when empty.
  uint64_t MaxEstimate() const;
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Value at quantile q in [0, 1]: the midpoint of the bucket containing
  /// the sample of rank ceil(q * count). 0 when the sketch is empty.
  double Quantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (bit width, count) for non-empty buckets, ascending.
    std::vector<std::pair<int, uint64_t>> buckets;
  };
  struct SketchValue {
    std::string name;
    uint64_t count = 0;
    /// Midpoint-estimated sum and bucket-upper-bound max (see
    /// QuantileSketch::SumEstimate / MaxEstimate).
    uint64_t sum = 0;
    uint64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Each vector is sorted ascending by name (guaranteed by Snapshot(), so
  /// ToJson() is byte-stable across runs for equal metric values — golden
  /// tests may diff it directly).
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SketchValue> sketches;

  /// Value of a counter by exact name; 0 when absent.
  uint64_t CounterOr0(std::string_view name) const;

  std::string ToJson() const;
  /// Prometheus text exposition format (metric names sanitized to
  /// [a-zA-Z0-9_] and prefixed "elitenet_"; sketches render as summaries
  /// with quantile labels).
  std::string ToPrometheusText() const;
  Status WriteJson(const std::string& path) const;
};

/// Process-global name -> metric table. Metric objects are created on
/// first use and never deallocated or moved, so the pointers the macros
/// cache in function-local statics stay valid for the process lifetime
/// (ResetValues zeroes values, never unregisters).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);
  QuantileSketch* GetSketch(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations survive — cached
  /// macro pointers stay valid).
  void ResetValues();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

#define ELITENET_METRICS_CONCAT_INNER(a, b) a##b
#define ELITENET_METRICS_CONCAT(a, b) ELITENET_METRICS_CONCAT_INNER(a, b)

/// Adds `n` to the counter `name`. `name` must be a stable string for the
/// lifetime of the process (string literals qualify).
#define ELITENET_COUNT(name, n)                                             \
  do {                                                                      \
    if (::elitenet::util::MetricsEnabled()) {                               \
      static ::elitenet::util::Counter* ELITENET_METRICS_CONCAT(            \
          elitenet_counter_, __LINE__) =                                    \
          ::elitenet::util::MetricsRegistry::Global().GetCounter(name);     \
      ELITENET_METRICS_CONCAT(elitenet_counter_, __LINE__)                  \
          ->Add(static_cast<uint64_t>(n));                                  \
    }                                                                       \
  } while (0)

/// Sets the gauge `name` to `v`.
#define ELITENET_GAUGE_SET(name, v)                                         \
  do {                                                                      \
    if (::elitenet::util::MetricsEnabled()) {                               \
      static ::elitenet::util::Gauge* ELITENET_METRICS_CONCAT(              \
          elitenet_gauge_, __LINE__) =                                      \
          ::elitenet::util::MetricsRegistry::Global().GetGauge(name);       \
      ELITENET_METRICS_CONCAT(elitenet_gauge_, __LINE__)                    \
          ->Set(static_cast<int64_t>(v));                                   \
    }                                                                       \
  } while (0)

/// Records one sample `v` in the histogram `name`.
#define ELITENET_HISTOGRAM(name, v)                                         \
  do {                                                                      \
    if (::elitenet::util::MetricsEnabled()) {                               \
      static ::elitenet::util::Histogram* ELITENET_METRICS_CONCAT(          \
          elitenet_histogram_, __LINE__) =                                  \
          ::elitenet::util::MetricsRegistry::Global().GetHistogram(name);   \
      ELITENET_METRICS_CONCAT(elitenet_histogram_, __LINE__)                \
          ->Observe(static_cast<uint64_t>(v));                              \
    }                                                                       \
  } while (0)

/// Records one sample `v` in the quantile sketch `name`.
#define ELITENET_SKETCH(name, v)                                            \
  do {                                                                      \
    if (::elitenet::util::MetricsEnabled()) {                               \
      static ::elitenet::util::QuantileSketch* ELITENET_METRICS_CONCAT(     \
          elitenet_sketch_, __LINE__) =                                     \
          ::elitenet::util::MetricsRegistry::Global().GetSketch(name);      \
      ELITENET_METRICS_CONCAT(elitenet_sketch_, __LINE__)                   \
          ->Observe(static_cast<uint64_t>(v));                              \
    }                                                                       \
  } while (0)

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_METRICS_H_

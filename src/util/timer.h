// Wall-clock stopwatch used by examples/benches for coarse phase timing.
// (google-benchmark owns micro-bench timing; this is for progress logs.)

#ifndef ELITENET_UTIL_TIMER_H_
#define ELITENET_UTIL_TIMER_H_

#include <chrono>

namespace elitenet {
namespace util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_TIMER_H_

// Deterministic external sorter for fixed-size 64-bit records.
//
// ExtSorter accepts an unbounded stream of uint64 records under a fixed
// memory budget: records accumulate in one bounded buffer, and every time
// the buffer fills it is std::sort-ed and spilled to a temp file (a
// "run" — raw little-endian uint64s). Finish() spills the tail; Scan()
// then merges all runs with a k-way loser tree into one globally sorted
// stream, holding only a small read block per run.
//
// Determinism contract: the merged stream is the *sorted multiset* of the
// added records. Sorting is a pure function of the multiset, so the
// output is byte-identical for any memory budget (any run partitioning)
// and any Add() interleaving — concurrent producers need no coordination
// beyond the sorter's internal mutex. This is what lets the streaming
// generator (gen/verified_network.h) emit per-source edge blocks from
// parallel workers and still produce the exact snapshot the in-memory
// pipeline builds.
//
// Graph edges pack as (u64(src) << 32) | dst, which orders records by
// (src, dst) — the CSR order the streaming ENG2 writer (graph/io.h)
// consumes directly. The reverse adjacency uses (u64(dst) << 32) | src.

#ifndef ELITENET_UTIL_EXT_SORT_H_
#define ELITENET_UTIL_EXT_SORT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace util {

struct ExtSortOptions {
  /// In-memory run buffer size in bytes. Runs are budget_bytes/8 records;
  /// the merge additionally holds kMergeBlockBytes per run. 0 means
  /// unbounded: everything sorts in RAM and nothing spills.
  uint64_t budget_bytes = 256ull << 20;
  /// Directory for spill files (created files are unlinked in the
  /// destructor). Empty uses the current directory.
  std::string temp_dir;
  /// Distinguishes concurrent sorters sharing a temp_dir.
  std::string temp_prefix = "extsort";
};

/// Packs a directed edge for (src, dst)-ordered sorting.
inline uint64_t PackEdge(uint32_t src, uint32_t dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}
inline uint32_t PackedSrc(uint64_t record) {
  return static_cast<uint32_t>(record >> 32);
}
inline uint32_t PackedDst(uint64_t record) {
  return static_cast<uint32_t>(record);
}
/// The same edge keyed for (dst, src)-ordered sorting.
inline uint64_t PackEdgeReversed(uint32_t src, uint32_t dst) {
  return (static_cast<uint64_t>(dst) << 32) | src;
}

class ExtSorter {
 public:
  explicit ExtSorter(ExtSortOptions options = {});
  /// Unlinks every spill file.
  ~ExtSorter();

  ExtSorter(const ExtSorter&) = delete;
  ExtSorter& operator=(const ExtSorter&) = delete;

  /// Buffers one record, spilling a sorted run when the buffer is full.
  /// Thread-safe; the global order is insensitive to interleaving.
  Status Add(uint64_t record);

  /// Buffers a batch under one lock acquisition.
  Status AddBatch(std::span<const uint64_t> records);

  /// Spills the tail run and seals the sorter: no Add after Finish, any
  /// number of Scan passes after it. Idempotent.
  Status Finish();

  uint64_t total_records() const { return total_records_; }
  /// Number of on-disk spill runs (the tail kept in RAM is not counted).
  size_t spill_run_count() const { return spill_paths_.size(); }
  /// Spill file paths, for introspection and fault-injection tests.
  const std::vector<std::string>& spill_paths() const { return spill_paths_; }

  /// One sorted pass over all records. Owns per-run read state; the
  /// parent sorter must outlive it and stay Finish()ed.
  class Stream {
   public:
    ~Stream();
    Stream(Stream&&) noexcept;
    Stream& operator=(Stream&&) noexcept;

    /// Yields the next record in ascending order. Returns false at end of
    /// stream *or* on error — check status() to tell which.
    bool Next(uint64_t* record);

    /// OK until a read fails (e.g. a truncated spill file mid-merge).
    const Status& status() const { return status_; }

   private:
    friend class ExtSorter;
    struct RunReader;
    explicit Stream(const ExtSorter* parent);

    bool RefillReader(size_t run);
    bool BeatsRun(uint32_t a, uint32_t b) const;
    void BuildLoserTree();
    void ReplayFrom(size_t run);

    const ExtSorter* parent_ = nullptr;
    Status status_;
    std::vector<std::unique_ptr<RunReader>> readers_;
    /// Loser tree over runs: tree_[0] holds the current winner, interior
    /// nodes hold losers. Size is the run count rounded up to a power of
    /// two; exhausted runs hold a +inf sentinel key.
    std::vector<uint32_t> tree_;
    size_t num_runs_ = 0;
    size_t leaf_base_ = 0;
    bool done_ = false;
  };

  /// Starts a merge pass. FailedPrecondition before Finish(); IoError if a
  /// spill file cannot be reopened.
  Result<Stream> Scan() const;

 private:
  Status SpillLocked();

  ExtSortOptions options_;
  size_t run_capacity_;  // records per spill run

  mutable std::mutex mutex_;
  std::vector<uint64_t> buffer_;
  std::vector<std::string> spill_paths_;
  /// Sorted tail run that never hit the spill threshold (always in RAM;
  /// the whole data set when budget_bytes == 0 or nothing spilled).
  std::vector<uint64_t> tail_run_;
  uint64_t total_records_ = 0;
  bool finished_ = false;
};

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_EXT_SORT_H_

// Histograms for reporting heavy-tailed distributions (Figs. 1-3 of the
// paper use log-scaled axes, so log-spaced bins are first-class here).

#ifndef ELITENET_UTIL_HISTOGRAM_H_
#define ELITENET_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elitenet {
namespace util {

/// One reported histogram bin: [lo, hi) with a count.
struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  uint64_t count = 0;
  /// Count divided by total observations.
  double fraction = 0.0;
};

/// Fixed-width linear-bin histogram over [min, max].
class LinearHistogram {
 public:
  LinearHistogram(double min, double max, int num_bins);

  void Add(double x);
  void AddN(double x, uint64_t n);

  uint64_t total() const { return total_; }
  int num_bins() const { return static_cast<int>(counts_.size()); }

  std::vector<HistogramBin> bins() const;

 private:
  double min_, max_, width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

/// Logarithmically spaced bins: bin i covers [min * r^i, min * r^(i+1)).
/// Values below `min` (including zero) fall into a dedicated "zero" bin,
/// reported first with lo == hi == 0.
class LogHistogram {
 public:
  /// `ratio` > 1 is the multiplicative bin width (e.g. 2.0 for doubling
  /// bins). `min` > 0 is the left edge of the first log bin.
  LogHistogram(double min, double ratio, int num_bins);

  void Add(double x);

  uint64_t total() const { return total_; }

  std::vector<HistogramBin> bins() const;

  /// Renders an ASCII bar chart of the histogram, one line per (nonempty
  /// unless keep_empty) bin, bar length proportional to log10(1+count).
  /// Used by the bench harnesses to print paper-figure shapes.
  std::string ToAsciiChart(const std::string& value_label,
                           bool keep_empty = false) const;

 private:
  double min_, log_min_, log_ratio_;
  std::vector<uint64_t> counts_;
  uint64_t zero_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

/// Exact counter over small non-negative integer values (used for hop-count
/// distributions, Fig. 3, where distances are tiny integers).
class IntHistogram {
 public:
  void Add(uint64_t value, uint64_t count = 1);

  uint64_t total() const { return total_; }
  uint64_t max_value() const;
  /// Count for a specific value (0 if never seen).
  uint64_t CountOf(uint64_t value) const;

  /// Mean of the distribution. Requires total() > 0.
  double Mean() const;
  /// Smallest v such that P(X <= v) >= q, for q in (0, 1].
  uint64_t Quantile(double q) const;

  const std::vector<uint64_t>& counts() const { return counts_; }

  std::string ToAsciiChart(const std::string& value_label) const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_HISTOGRAM_H_

#include "util/csv.h"

namespace elitenet {
namespace util {

CsvWriter::~CsvWriter() { Close().ok(); }

Status CsvWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::FailedPrecondition("already open");
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer not open");
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ',';
    line += CsvEscape(fields[i]);
  }
  line += '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("fclose failed");
  return Status::OK();
}

std::string CsvEscape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace util
}  // namespace elitenet

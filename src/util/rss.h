// Process resident-set-size introspection (Linux /proc/self/status).
//
// The out-of-core pipeline (util/ext_sort.h, graph/io.h streaming writer)
// exists to keep peak RSS bounded while the data set is unbounded, so the
// scale benches need to *measure* residency, not estimate it. Three
// queries:
//
//   * CurrentRssBytes — VmRSS, what is resident right now;
//   * PeakRssBytes    — VmHWM, the high-water mark since process start
//                       (or since the last ResetPeakRss);
//   * ResetPeakRss    — writes "5" to /proc/self/clear_refs, resetting
//                       VmHWM so per-phase peaks can be attributed
//                       (generate vs convert vs serve).
//
// All three are best-effort: on kernels or sandboxes where the proc files
// are unavailable the getters return 0 and the reset returns false, and
// callers are expected to degrade to "unmeasured" rather than fail.

#ifndef ELITENET_UTIL_RSS_H_
#define ELITENET_UTIL_RSS_H_

#include <cstdint>

namespace elitenet {
namespace util {

/// VmRSS in bytes; 0 when unreadable.
uint64_t CurrentRssBytes();

/// VmHWM (peak RSS) in bytes; 0 when unreadable.
uint64_t PeakRssBytes();

/// Resets the peak-RSS watermark to the current RSS. Returns true on
/// success; false where /proc/self/clear_refs is not writable.
bool ResetPeakRss();

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_RSS_H_

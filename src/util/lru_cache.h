// Sharded LRU result cache for the serving layer.
//
// A fixed-capacity key -> value map with least-recently-used eviction,
// split into independently locked shards so concurrent lookups from the
// query executor's worker threads do not serialize on one mutex. A key
// always maps to the same shard (by hash), so Get/Put for the same key
// are linearized by that shard's lock; capacity is enforced per shard
// (total capacity / shards, minimum 1 entry each).
//
// The cache stores *finished* results only — values are immutable once
// inserted — so a racy double-miss on the same key merely computes the
// value twice and inserts identical bytes; correctness never depends on
// hit/miss timing. Hit/miss tallies are kept per shard under the shard
// lock and summed on read.

#ifndef ELITENET_UTIL_LRU_CACHE_H_
#define ELITENET_UTIL_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace elitenet {
namespace util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` entries total across `shards` shards (each shard holds at
  /// least one). Requires capacity >= 1 and shards >= 1.
  explicit ShardedLruCache(size_t capacity, size_t shards = 8) {
    EN_CHECK(capacity >= 1);
    EN_CHECK(shards >= 1);
    if (shards > capacity) shards = capacity;
    const size_t per_shard = (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  /// Copies the cached value into `*out` and marks the entry most
  /// recently used. Returns false (and leaves `*out` alone) on miss.
  bool Get(const Key& key, Value* out) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.misses;
      return false;
    }
    ++s.hits;
    s.order.splice(s.order.begin(), s.order, it->second);
    *out = it->second->second;
    return true;
  }

  /// Inserts (or refreshes) key -> value, evicting the shard's least
  /// recently used entry when full.
  void Put(const Key& key, Value value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = std::move(value);
      s.order.splice(s.order.begin(), s.order, it->second);
      return;
    }
    if (s.order.size() >= s.capacity) {
      s.index.erase(s.order.back().first);
      s.order.pop_back();
    }
    s.order.emplace_front(key, std::move(value));
    s.index[key] = s.order.begin();
  }

  /// Entries currently resident, across all shards.
  size_t size() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      n += s->order.size();
    }
    return n;
  }

  uint64_t hits() const { return SumTally(&Shard::hits); }
  uint64_t misses() const { return SumTally(&Shard::misses); }

  size_t num_shards() const { return shards_.size(); }

  /// Drops every entry; hit/miss tallies are preserved.
  void Clear() {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->order.clear();
      s->index.clear();
    }
  }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}
    mutable std::mutex mutex;
    size_t capacity;
    std::list<std::pair<Key, Value>> order;  // front = most recent
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  Shard& ShardFor(const Key& key) {
    // Finalizer-style mix so shard choice uses high-entropy bits even when
    // Hash is the identity (libstdc++ integer hashing).
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return *shards_[h % shards_.size()];
  }

  uint64_t SumTally(uint64_t Shard::* member) const {
    uint64_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      n += (*s).*member;
    }
    return n;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_LRU_CACHE_H_

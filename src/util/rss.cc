#include "util/rss.h"

#include <cstdio>
#include <cstring>

namespace elitenet {
namespace util {

namespace {

// Scans /proc/self/status for "<field>:  <n> kB" and returns n * 1024.
uint64_t StatusFieldBytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  uint64_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 ||
        line[field_len] != ':') {
      continue;
    }
    unsigned long long kb = 0;
    if (std::sscanf(line + field_len + 1, "%llu", &kb) == 1) {
      bytes = static_cast<uint64_t>(kb) * 1024;
    }
    break;
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

uint64_t CurrentRssBytes() { return StatusFieldBytes("VmRSS"); }

uint64_t PeakRssBytes() { return StatusFieldBytes("VmHWM"); }

bool ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace util
}  // namespace elitenet

#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace elitenet {
namespace util {

namespace {

std::atomic<bool> g_metrics_enabled{false};
std::once_flag g_metrics_env_once;

// ELITENET_METRICS=<path>: enable metrics now and dump the JSON snapshot
// to <path> when the process exits.
void ResolveMetricsEnv() {
  const char* env = std::getenv("ELITENET_METRICS");
  if (env == nullptr || *env == '\0') return;
  static std::string* path = new std::string(env);
  g_metrics_enabled.store(true, std::memory_order_relaxed);
  std::atexit([] {
    const Status s =
        MetricsRegistry::Global().Snapshot().WriteJson(*path);
    if (!s.ok()) {
      std::fprintf(stderr, "elitenet: metrics dump failed: %s\n",
                   s.ToString().c_str());
    }
  });
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

}  // namespace

bool MetricsEnabled() {
  std::call_once(g_metrics_env_once, ResolveMetricsEnv);
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  std::call_once(g_metrics_env_once, ResolveMetricsEnv);
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::Observe(uint64_t v) {
  // Bucket = bit width: 0 for v == 0, else 1 + floor(log2(v)).
  const int b = std::bit_width(v);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

size_t QuantileSketch::BucketIndex(uint64_t v) {
  if (v < 2 * kSubBuckets) return static_cast<size_t>(v);
  const int octave = std::bit_width(v) - 1;  // >= kSubBucketBits + 1
  const int shift = octave - kSubBucketBits;
  const uint64_t sub = (v >> shift) - kSubBuckets;  // [0, kSubBuckets)
  return static_cast<size_t>(2 * kSubBuckets +
                             static_cast<uint64_t>(shift - 1) * kSubBuckets +
                             sub);
}

uint64_t QuantileSketch::BucketLowerBound(size_t b) {
  if (b < 2 * kSubBuckets) return b;
  const uint64_t rel = b - 2 * kSubBuckets;
  const int shift = static_cast<int>(rel / kSubBuckets) + 1;
  const uint64_t sub = rel % kSubBuckets;
  return (kSubBuckets + sub) << shift;
}

uint64_t QuantileSketch::BucketWidth(size_t b) {
  if (b < 2 * kSubBuckets) return 1;
  return uint64_t{1} << ((b - 2 * kSubBuckets) / kSubBuckets + 1);
}

void QuantileSketch::Observe(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t c = other.buckets_[b].load(std::memory_order_relaxed);
    if (c > 0) buckets_[b].fetch_add(c, std::memory_order_relaxed);
  }
}

uint64_t QuantileSketch::count() const {
  uint64_t n = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    n += buckets_[b].load(std::memory_order_relaxed);
  }
  return n;
}

double QuantileSketch::SumEstimate() const {
  double s = 0.0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const double mid = static_cast<double>(BucketLowerBound(b)) +
                       static_cast<double>(BucketWidth(b) - 1) / 2.0;
    s += static_cast<double>(c) * mid;
  }
  return s;
}

uint64_t QuantileSketch::MaxEstimate() const {
  for (size_t b = kNumBuckets; b-- > 0;) {
    if (buckets_[b].load(std::memory_order_relaxed) > 0) {
      return BucketLowerBound(b) + BucketWidth(b) - 1;
    }
  }
  return 0;
}

double QuantileSketch::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return static_cast<double>(BucketLowerBound(b)) +
             static_cast<double>(BucketWidth(b) - 1) / 2.0;
    }
  }
  // Unreachable unless buckets raced with the count() pass above.
  return static_cast<double>(MaxEstimate());
}

void QuantileSketch::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// std::map keeps iteration (and so snapshots) name-sorted, and its nodes
// never move, so handed-out metric pointers stay valid forever.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<QuantileSketch>, std::less<>> sketches;
};

MetricsRegistry::Impl* MetricsRegistry::impl() {
  static Impl* impl = new Impl;
  return impl;
}

const MetricsRegistry::Impl* MetricsRegistry::impl() const {
  return const_cast<MetricsRegistry*>(this)->impl();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  auto it = m->counters.find(name);
  if (it == m->counters.end()) {
    it = m->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  auto it = m->gauges.find(name);
  if (it == m->gauges.end()) {
    it = m->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  auto it = m->histograms.find(name);
  if (it == m->histograms.end()) {
    it = m->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

QuantileSketch* MetricsRegistry::GetSketch(std::string_view name) {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  auto it = m->sketches.find(name);
  if (it == m->sketches.end()) {
    it = m->sketches
             .emplace(std::string(name), std::make_unique<QuantileSketch>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const Impl* m = impl();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(m->mutex);
  snap.counters.reserve(m->counters.size());
  for (const auto& [name, counter] : m->counters) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(m->gauges.size());
  for (const auto& [name, gauge] : m->gauges) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(m->histograms.size());
  for (const auto& [name, histogram] : m->histograms) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t c = histogram->bucket(b);
      if (c > 0) h.buckets.emplace_back(b, c);
    }
    snap.histograms.push_back(std::move(h));
  }
  snap.sketches.reserve(m->sketches.size());
  for (const auto& [name, sketch] : m->sketches) {
    MetricsSnapshot::SketchValue s;
    s.name = name;
    s.count = sketch->count();
    s.sum = static_cast<uint64_t>(sketch->SumEstimate() + 0.5);
    s.max = sketch->MaxEstimate();
    s.p50 = sketch->Quantile(0.50);
    s.p90 = sketch->Quantile(0.90);
    s.p95 = sketch->Quantile(0.95);
    s.p99 = sketch->Quantile(0.99);
    snap.sketches.push_back(std::move(s));
  }
  // std::map already iterates name-sorted; the explicit sort pins the
  // byte-stable-JSON guarantee to the snapshot itself, independent of the
  // registry's container choice (golden tests rely on it).
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.sketches.begin(), snap.sketches.end(), by_name);
  return snap;
}

void MetricsRegistry::ResetValues() {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  for (auto& [name, counter] : m->counters) counter->Reset();
  for (auto& [name, gauge] : m->gauges) gauge->Reset();
  for (auto& [name, histogram] : m->histograms) histogram->Reset();
  for (auto& [name, sketch] : m->sketches) sketch->Reset();
}

uint64_t MetricsSnapshot::CounterOr0(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  char buf[64];
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, counters[i].name);
    std::snprintf(buf, sizeof(buf), "\": %llu",
                  static_cast<unsigned long long>(counters[i].value));
    out += buf;
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, gauges[i].name);
    std::snprintf(buf, sizeof(buf), "\": %lld",
                  static_cast<long long>(gauges[i].value));
    out += buf;
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, h.name);
    std::snprintf(buf, sizeof(buf), "\": {\"count\": %llu, \"sum\": %llu",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    out += ", \"buckets\": {";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "\"%d\": %llu", h.buckets[b].first,
                    static_cast<unsigned long long>(h.buckets[b].second));
      out += buf;
    }
    out += "}}";
  }
  out += histograms.empty() ? "},\n" : "\n  },\n";
  out += "  \"sketches\": {";
  for (size_t i = 0; i < sketches.size(); ++i) {
    const SketchValue& s = sketches[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, s.name);
    std::snprintf(buf, sizeof(buf),
                  "\": {\"count\": %llu, \"sum\": %llu, \"max\": %llu",
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.sum),
                  static_cast<unsigned long long>(s.max));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ", \"p50\": %.1f, \"p90\": %.1f, \"p95\": %.1f, "
                  "\"p99\": %.1f}",
                  s.p50, s.p90, s.p95, s.p99);
    out += buf;
  }
  out += sketches.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'.
std::string PromName(const std::string& name) {
  std::string out = "elitenet_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  char buf[160];
  for (const CounterValue& c : counters) {
    const std::string n = PromName(c.name);
    out += "# TYPE " + n + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %llu\n", n.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const GaugeValue& g : gauges) {
    const std::string n = PromName(g.name);
    out += "# TYPE " + n + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %lld\n", n.c_str(),
                  static_cast<long long>(g.value));
    out += buf;
  }
  for (const HistogramValue& h : histograms) {
    const std::string n = PromName(h.name);
    out += "# TYPE " + n + " summary\n";
    std::snprintf(buf, sizeof(buf), "%s_count %llu\n%s_sum %llu\n",
                  n.c_str(), static_cast<unsigned long long>(h.count),
                  n.c_str(), static_cast<unsigned long long>(h.sum));
    out += buf;
  }
  for (const SketchValue& s : sketches) {
    const std::string n = PromName(s.name);
    out += "# TYPE " + n + " summary\n";
    std::snprintf(buf, sizeof(buf),
                  "%s{quantile=\"0.5\"} %.1f\n%s{quantile=\"0.9\"} %.1f\n"
                  "%s{quantile=\"0.95\"} %.1f\n%s{quantile=\"0.99\"} %.1f\n",
                  n.c_str(), s.p50, n.c_str(), s.p90, n.c_str(), s.p95,
                  n.c_str(), s.p99);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %llu\n%s_sum %llu\n",
                  n.c_str(), static_cast<unsigned long long>(s.count),
                  n.c_str(), static_cast<unsigned long long>(s.sum));
    out += buf;
  }
  return out;
}

Status MetricsSnapshot::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics output: " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to metrics output: " + path);
  }
  return Status::OK();
}

}  // namespace util
}  // namespace elitenet

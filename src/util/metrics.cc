#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace elitenet {
namespace util {

namespace {

std::atomic<bool> g_metrics_enabled{false};
std::once_flag g_metrics_env_once;

// ELITENET_METRICS=<path>: enable metrics now and dump the JSON snapshot
// to <path> when the process exits.
void ResolveMetricsEnv() {
  const char* env = std::getenv("ELITENET_METRICS");
  if (env == nullptr || *env == '\0') return;
  static std::string* path = new std::string(env);
  g_metrics_enabled.store(true, std::memory_order_relaxed);
  std::atexit([] {
    const Status s =
        MetricsRegistry::Global().Snapshot().WriteJson(*path);
    if (!s.ok()) {
      std::fprintf(stderr, "elitenet: metrics dump failed: %s\n",
                   s.ToString().c_str());
    }
  });
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

}  // namespace

bool MetricsEnabled() {
  std::call_once(g_metrics_env_once, ResolveMetricsEnv);
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  std::call_once(g_metrics_env_once, ResolveMetricsEnv);
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::Observe(uint64_t v) {
  // Bucket = bit width: 0 for v == 0, else 1 + floor(log2(v)).
  const int b = std::bit_width(v);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// std::map keeps iteration (and so snapshots) name-sorted, and its nodes
// never move, so handed-out metric pointers stay valid forever.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry::Impl* MetricsRegistry::impl() {
  static Impl* impl = new Impl;
  return impl;
}

const MetricsRegistry::Impl* MetricsRegistry::impl() const {
  return const_cast<MetricsRegistry*>(this)->impl();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  auto it = m->counters.find(name);
  if (it == m->counters.end()) {
    it = m->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  auto it = m->gauges.find(name);
  if (it == m->gauges.end()) {
    it = m->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  auto it = m->histograms.find(name);
  if (it == m->histograms.end()) {
    it = m->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const Impl* m = impl();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(m->mutex);
  snap.counters.reserve(m->counters.size());
  for (const auto& [name, counter] : m->counters) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(m->gauges.size());
  for (const auto& [name, gauge] : m->gauges) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(m->histograms.size());
  for (const auto& [name, histogram] : m->histograms) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t c = histogram->bucket(b);
      if (c > 0) h.buckets.emplace_back(b, c);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetValues() {
  Impl* m = impl();
  std::lock_guard<std::mutex> lock(m->mutex);
  for (auto& [name, counter] : m->counters) counter->Reset();
  for (auto& [name, gauge] : m->gauges) gauge->Reset();
  for (auto& [name, histogram] : m->histograms) histogram->Reset();
}

uint64_t MetricsSnapshot::CounterOr0(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  char buf[64];
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, counters[i].name);
    std::snprintf(buf, sizeof(buf), "\": %llu",
                  static_cast<unsigned long long>(counters[i].value));
    out += buf;
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, gauges[i].name);
    std::snprintf(buf, sizeof(buf), "\": %lld",
                  static_cast<long long>(gauges[i].value));
    out += buf;
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    AppendEscaped(&out, h.name);
    std::snprintf(buf, sizeof(buf), "\": {\"count\": %llu, \"sum\": %llu",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    out += ", \"buckets\": {";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "\"%d\": %llu", h.buckets[b].first,
                    static_cast<unsigned long long>(h.buckets[b].second));
      out += buf;
    }
    out += "}}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status MetricsSnapshot::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics output: " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to metrics output: " + path);
  }
  return Status::OK();
}

}  // namespace util
}  // namespace elitenet

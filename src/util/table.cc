#include "util/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace elitenet {
namespace util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

size_t TextTable::AddRow() {
  rows_.emplace_back();
  return rows_.size() - 1;
}

void TextTable::AddCell(std::string text) {
  EN_CHECK(!rows_.empty());
  rows_.back().push_back(std::move(text));
}

void TextTable::AddCell(double value, int precision) {
  AddCell(FormatNumber(value, precision));
}

void TextTable::AddCell(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  AddCell(std::string(buf));
}

void TextTable::AddCell(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  AddCell(std::string(buf));
}

void TextTable::AddRowCells(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      if (c + 1 < widths.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatNumber(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return std::string(buf);
}

std::string FormatWithCommas(uint64_t value) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%" PRIu64, value);
  std::string raw(digits);
  std::string out;
  const size_t n = raw.size();
  for (size_t i = 0; i < n; ++i) {
    out += raw[i];
    const size_t remaining = n - 1 - i;
    if (remaining > 0 && remaining % 3 == 0) out += ',';
  }
  return out;
}

void PrintBanner(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured, bool shape_ok) {
  std::printf("  %-36s paper=%-16s measured=%-16s [shape: %s]\n",
              metric.c_str(), paper.c_str(), measured.c_str(),
              shape_ok ? "OK" : "DEVIATES");
}

}  // namespace util
}  // namespace elitenet

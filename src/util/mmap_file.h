// Read-only memory-mapped files (RAII).
//
// MmapFile::Open maps an entire file read-only and unmaps it on
// destruction. The mapping is immutable and page-aligned, so callers may
// hand out views (std::span) into it from any number of threads; whoever
// holds the last shared_ptr<MmapFile> keeps the bytes alive. This is the
// storage engine behind zero-copy graph snapshots (graph/io.h MapBinary)
// and persisted warm indexes (serve/warm_index_cache.h): instead of
// deserializing arrays into heap vectors, consumers point spans at the
// mapping and let the page cache do the loading.

#ifndef ELITENET_UTIL_MMAP_FILE_H_
#define ELITENET_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace elitenet {
namespace util {

class MmapFile {
 public:
  /// Maps `path` read-only in its entirety. A zero-length file maps to an
  /// empty (nullptr, 0) view, which is valid. IoError when the file
  /// cannot be opened or mapped.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// First mapped byte; nullptr iff size() == 0. Page-aligned, so any
  /// offset that is a multiple of alignof(T) yields a well-aligned T*.
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MmapFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_MMAP_FILE_H_

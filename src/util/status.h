// Status / Result error-handling primitives (RocksDB/Arrow idiom).
//
// Fallible operations in elitenet return Status (or Result<T> when they
// produce a value). Exceptions are not used; programmer errors are handled
// with the EN_CHECK family in util/check.h.

#ifndef ELITENET_UTIL_STATUS_H_
#define ELITENET_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace elitenet {

/// Machine-readable error class of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kNotSupported,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (OK carries
/// no allocation in practice because the message is empty).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never both, never neither.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return value;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: `return Status::InvalidArgument(...);`
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Unchecked in release builds beyond std::optional UB;
  /// call sites should test ok() or use EN_ASSIGN_OR_RETURN.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace elitenet

/// Propagates a non-OK Status to the caller.
#define EN_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::elitenet::Status _en_st = (expr);         \
    if (!_en_st.ok()) return _en_st;            \
  } while (false)

#define EN_CONCAT_IMPL(a, b) a##b
#define EN_CONCAT(a, b) EN_CONCAT_IMPL(a, b)

/// Evaluates a Result<T>-returning expression; on success binds the value to
/// `lhs`, on failure returns the error Status.
#define EN_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto EN_CONCAT(_en_result_, __LINE__) = (expr);             \
  if (!EN_CONCAT(_en_result_, __LINE__).ok())                 \
    return EN_CONCAT(_en_result_, __LINE__).status();         \
  lhs = std::move(EN_CONCAT(_en_result_, __LINE__)).value()

#endif  // ELITENET_UTIL_STATUS_H_

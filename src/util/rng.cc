#include "util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace elitenet {
namespace util {

uint64_t Rng::Poisson(double lambda) {
  EN_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double prod = UniformDouble();
    uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= UniformDouble();
    }
    return n;
  }
  // For large lambda, use the normal approximation with a correction and
  // clamp at zero; adequate for the synthetic-workload use cases here
  // (relative error of tail probabilities is irrelevant for lambda >= 30).
  const double x = Normal(lambda, std::sqrt(lambda));
  if (x < 0.5) return 0;
  return static_cast<uint64_t>(x + 0.5);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  EN_CHECK(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k > n / 2) {
    // Dense case: shuffle a full permutation prefix.
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t j = i + static_cast<uint32_t>(UniformU64(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<uint32_t> chosen;
  chosen.reserve(k * 2);
  for (uint32_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(UniformU64(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  EN_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    EN_CHECK(w >= 0.0);
    total += w;
  }
  EN_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining entries have probability 1 up to floating-point residue.
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
}

uint32_t AliasSampler::Sample(Rng* rng) const {
  const uint32_t i = static_cast<uint32_t>(rng->UniformU64(prob_.size()));
  return rng->UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace util
}  // namespace elitenet

// Plain-text table rendering for bench harnesses and example binaries.
// Produces aligned, boxless tables in the style of the paper's Tables I/II
// plus "paper vs measured" comparison rows used by EXPERIMENTS.md.

#ifndef ELITENET_UTIL_TABLE_H_
#define ELITENET_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace elitenet {
namespace util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with sensible defaults. Rendered with two-space gutters and a rule
/// under the header.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; returns row index.
  size_t AddRow();

  /// Appends a cell to the last row (AddRow must have been called).
  void AddCell(std::string text);
  void AddCell(double value, int precision = 4);
  void AddCell(int64_t value);
  void AddCell(uint64_t value);

  /// Convenience: adds an entire row of preformatted cells.
  void AddRowCells(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like "%.4g" but keeping integers unpadded.
std::string FormatNumber(double value, int precision = 4);

/// Formats a count with thousands separators ("79,213,811").
std::string FormatWithCommas(uint64_t value);

/// Prints a section banner used by all bench binaries:
/// ===== <title> =====
void PrintBanner(const std::string& title);

/// One "paper vs measured" comparison line used in bench output, e.g.
///   reciprocity            paper=0.337      measured=0.3312   [shape: OK]
void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured, bool shape_ok);

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_TABLE_H_

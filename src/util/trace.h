// Hierarchical span tracing for the study pipeline and parallel kernels.
//
// ELITENET_SPAN("wiring") opens an RAII scope that records name, start,
// duration, nesting (parent span on the same thread), and a small
// sequential thread id into the process-global TraceRecorder. Recorded
// runs export as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev) or as an indented text
// tree for terminals.
//
// Tracing is off by default. Enable it programmatically
// (SetTracingEnabled), through StudyConfig::trace_path, or process-wide
// with the ELITENET_TRACE=<path> environment variable, which also
// arranges for the trace to be written to <path> at process exit. When
// disabled, ELITENET_SPAN costs one relaxed atomic load and a branch —
// measured well under 1% on the hot kernels (bench_observability).
//
// Instrumentation never feeds back into results: spans read clocks and
// append to a buffer, nothing else. The determinism contract of
// util/parallel.h (bit-identical results for any thread count) holds with
// tracing on or off, enforced by tests/parallel_determinism_test.cc.

#ifndef ELITENET_UTIL_TRACE_H_
#define ELITENET_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace elitenet {
namespace util {

/// True when span recording is on. One relaxed atomic load; the first call
/// also resolves the ELITENET_TRACE environment variable.
bool TracingEnabled();

/// Turns span recording on or off process-wide. Does not clear anything
/// already recorded.
void SetTracingEnabled(bool enabled);

/// One completed (or still-open, duration 0) span.
struct TraceEvent {
  std::string name;
  uint64_t start_ns = 0;     ///< Relative to the recorder epoch.
  uint64_t duration_ns = 0;  ///< 0 while the span is still open.
  uint32_t thread_id = 0;    ///< Small sequential id, 0 = first thread seen.
  int32_t parent = -1;       ///< Index of the enclosing span, -1 for roots.
  int32_t depth = 0;         ///< Nesting depth on its thread (roots = 0).
};

/// Thread-safe append-only recorder behind ELITENET_SPAN. Spans reserve
/// their slot when they open (so parent links are stable) and fill in the
/// duration when they close.
class TraceRecorder {
 public:
  /// The process-global recorder every ELITENET_SPAN writes to.
  static TraceRecorder& Global();

  TraceRecorder();

  /// Opens a span; returns its event index for EndSpan.
  int64_t BeginSpan(const char* name);
  void EndSpan(int64_t index);

  /// Copies out everything recorded so far.
  std::vector<TraceEvent> snapshot() const;
  size_t size() const;

  /// Drops all recorded events and resets the time epoch. Must not be
  /// called while spans are open.
  void Clear();

  /// Chrome trace-event JSON ("X" complete events, microsecond
  /// timestamps); loadable in chrome://tracing and Perfetto.
  std::string ToChromeJson() const;

  /// Indented per-thread tree with durations, for terminal output.
  std::string ToTextTree() const;

  Status WriteChromeJson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// One span as seen by a SpanCapture: name, timing relative to the
/// capture's start, and tree position within the capture.
struct CapturedSpan {
  const char* name = nullptr;  ///< The macro's string literal (static).
  uint64_t start_ns = 0;       ///< Relative to the capture's construction.
  uint64_t duration_ns = 0;    ///< 0 while still open.
  int32_t parent = -1;         ///< Index of the enclosing captured span.
  int32_t depth = 0;           ///< Nesting depth within the capture.
};

/// Thread-local span sink: while a SpanCapture is alive on a thread,
/// every ELITENET_SPAN on that thread ALSO records into it — independent
/// of the global TracingEnabled() switch. This is how the serving layer
/// captures one request's span tree into its flight-recorder record
/// without turning on (and paying for) whole-process tracing. Captures
/// nest: constructing a second capture shadows the first until it is
/// destroyed. The cost to non-captured threads is one thread-local load
/// and branch per span (measured with the disabled-instrumentation
/// overhead in bench_observability).
class SpanCapture {
 public:
  explicit SpanCapture(size_t max_spans = 256);
  ~SpanCapture();

  SpanCapture(const SpanCapture&) = delete;
  SpanCapture& operator=(const SpanCapture&) = delete;

  /// Moves the captured spans out (the capture keeps recording into a
  /// now-empty buffer; normally called once, after the workload).
  std::vector<CapturedSpan> Take();
  /// True when max_spans was hit and later spans were dropped.
  bool truncated() const { return truncated_; }

  /// The capture active on this thread, or nullptr. Used by ScopedSpan.
  static SpanCapture* Active();
  /// Opens/closes a captured span; Begin returns -1 when full.
  int32_t Begin(const char* name);
  void End(int32_t index);

 private:
  std::vector<CapturedSpan> spans_;
  std::vector<int32_t> open_;
  std::chrono::steady_clock::time_point epoch_;
  size_t max_spans_;
  bool truncated_ = false;
  SpanCapture* prev_ = nullptr;
};

/// RAII scope recorded into TraceRecorder::Global(). Prefer the
/// ELITENET_SPAN macro, which names the local variable for you.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) index_ = TraceRecorder::Global().BeginSpan(name);
    if (SpanCapture* c = SpanCapture::Active()) {
      capture_ = c;
      capture_index_ = c->Begin(name);
    }
  }
  ~ScopedSpan() {
    if (index_ >= 0) TraceRecorder::Global().EndSpan(index_);
    if (capture_ != nullptr) capture_->End(capture_index_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  int64_t index_ = -1;
  SpanCapture* capture_ = nullptr;
  int32_t capture_index_ = -1;
};

/// Wall-clock phase timer that doubles as a trace span: the span covers
/// construction (or the last Reset) to destruction (or the next Reset).
/// Subsumes the old util::Stopwatch — Seconds()/Millis() work whether or
/// not tracing is enabled, so examples and benches keep their progress
/// printing while contributing spans to the trace for free.
class SpanTimer {
 public:
  /// `name == nullptr` times without recording a span.
  explicit SpanTimer(const char* name = nullptr) { Reset(name); }
  ~SpanTimer() { End(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Ends the current span (if any), restarts the clock, and opens a new
  /// span named `name` (nullptr = plain timing).
  void Reset(const char* name = nullptr) {
    End();
    start_ = std::chrono::steady_clock::now();
    if (name != nullptr && TracingEnabled()) {
      index_ = TraceRecorder::Global().BeginSpan(name);
    }
  }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  void End() {
    if (index_ >= 0) {
      TraceRecorder::Global().EndSpan(index_);
      index_ = -1;
    }
  }

  std::chrono::steady_clock::time_point start_;
  int64_t index_ = -1;
};

#define ELITENET_TRACE_CONCAT_INNER(a, b) a##b
#define ELITENET_TRACE_CONCAT(a, b) ELITENET_TRACE_CONCAT_INNER(a, b)

/// Opens a span for the rest of the enclosing scope.
#define ELITENET_SPAN(name)                  \
  ::elitenet::util::ScopedSpan ELITENET_TRACE_CONCAT(elitenet_span_, \
                                                     __LINE__)(name)

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_TRACE_H_

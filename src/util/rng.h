// Deterministic pseudo-random number generation.
//
// All randomness in elitenet flows through Rng so that every experiment is
// reproducible from a single 64-bit seed. The core generator is
// xoshiro256** (Blackman & Vigna), seeded via SplitMix64.

#ifndef ELITENET_UTIL_RNG_H_
#define ELITENET_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace elitenet {
namespace util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives the seed of an independent substream from a base seed and a
/// stream index. Parallel kernels give replicate/source/block `i` its own
/// Rng(SubstreamSeed(base, i)): which thread runs stream `i` stops
/// mattering, so results are bit-identical for any thread count. The
/// golden-ratio stride keeps consecutive indices far apart in SplitMix64
/// space (the same spacing Seed() itself relies on).
inline uint64_t SubstreamSeed(uint64_t base, uint64_t index) {
  uint64_t s = base + (index + 1) * 0x9E3779B97F4A7C15ULL;
  return SplitMix64(&s);
}

/// xoshiro256** generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions, though the built-in helpers are preferred
/// for determinism across standard-library implementations.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
    // All-zero state is invalid for xoshiro; SplitMix64 of any seed never
    // yields four zeros, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless method (bias is rejected).
  uint64_t UniformU64(uint64_t bound) {
    EN_CHECK(bound > 0);
    // Standard 128-bit multiply rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    EN_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(UniformU64(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box–Muller with caching of the paired deviate.
  double Normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u1, u2;
    do {
      u1 = UniformDouble();
    } while (u1 <= 0.0);
    u2 = UniformDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda) {
    EN_CHECK(lambda > 0.0);
    double u;
    do {
      u = UniformDouble();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
  }

  /// Continuous Pareto (power law) with density ~ x^-alpha for x >= xmin,
  /// alpha > 1. Inverse-CDF sampling.
  double Pareto(double alpha, double xmin) {
    EN_CHECK(alpha > 1.0);
    EN_CHECK(xmin > 0.0);
    double u;
    do {
      u = UniformDouble();
    } while (u <= 0.0);
    return xmin * std::pow(u, -1.0 / (alpha - 1.0));
  }

  /// Discrete power law P(k) ~ k^-alpha for k >= kmin, via the
  /// continuous-approximation transform of Clauset et al. (2009), eq. D.6:
  /// round(Pareto(alpha, kmin - 0.5) + 0.5) is a close approximation whose
  /// bias vanishes for kmin >~ 5.
  uint64_t PowerLawInt(double alpha, uint64_t kmin) {
    EN_CHECK(kmin >= 1);
    const double x = Pareto(alpha, static_cast<double>(kmin) - 0.5);
    const double k = std::floor(x + 0.5);
    return static_cast<uint64_t>(k);
  }

  /// Poisson with mean lambda. Knuth for small lambda, PTRS-style normal
  /// approximation with rejection fallback for large lambda.
  uint64_t Poisson(double lambda);

  /// Geometric: number of failures before first success, p in (0, 1].
  uint64_t Geometric(double p) {
    EN_CHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    double u;
    do {
      u = UniformDouble();
    } while (u <= 0.0);
    return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
  }

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformU64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Sample `k` distinct values from [0, n) without replacement
  /// (Floyd's algorithm). Requires k <= n. Output order is unspecified.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Forks an independent generator stream; deterministic given this
  /// generator's state. Useful for giving parallel tasks their own streams.
  Rng Fork() { return Rng(Next() ^ 0xA3EC647659359ACDULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

/// Weighted discrete sampling in O(1) per draw after O(n) setup
/// (Vose's alias method). Used heavily by the graph generators.
class AliasSampler {
 public:
  /// Builds the alias table from non-negative weights (not all zero).
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to weight.
  uint32_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace util
}  // namespace elitenet

#endif  // ELITENET_UTIL_RNG_H_

// Assertion macros for programmer errors (contract violations). Unlike
// Status, these abort: they guard invariants that should be impossible to
// violate through the public API.

#ifndef ELITENET_UTIL_CHECK_H_
#define ELITENET_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define EN_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "EN_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define EN_CHECK_MSG(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "EN_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define EN_CHECK_LT(a, b) EN_CHECK((a) < (b))
#define EN_CHECK_LE(a, b) EN_CHECK((a) <= (b))
#define EN_CHECK_GT(a, b) EN_CHECK((a) > (b))
#define EN_CHECK_GE(a, b) EN_CHECK((a) >= (b))
#define EN_CHECK_EQ(a, b) EN_CHECK((a) == (b))
#define EN_CHECK_NE(a, b) EN_CHECK((a) != (b))

#endif  // ELITENET_UTIL_CHECK_H_

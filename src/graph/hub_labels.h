// Pruned landmark labeling (2-hop hub labels) — an exact distance oracle
// for directed graphs, after Akiba, Iwata & Yoshida (SIGMOD'13).
//
// Every node carries two label sets: L_out(v) = {(h, d(v->h))} for hubs h
// reachable *from* v, and L_in(v) = {(h, d(h->v))} for hubs that reach v.
// The directed distance is then a sorted-merge intersection:
//
//   dist(s, t) = min over h in L_out(s) ∩ L_in(t) of d(s->h) + d(h->t)
//
// which is exact for *every* pair when the labels come from pruned BFS in
// a fixed total order over hubs: process nodes in degree-descending order
// (the RelabelByDegree order — biggest hubs first); for hub k run one
// forward and one reverse BFS, and at each visited node u at depth d,
// *prune* (add no label, expand no edge) whenever the first k-1 hubs
// already certify a distance <= d. On low-diameter skewed graphs — the
// verified-network shape — almost every BFS collapses after a handful of
// nodes, so total label size stays near-linear and a query is a
// microsecond merge instead of a graph traversal.
//
// Determinism: the label set is a pure function of (graph, hub order) —
// pruning consults only labels of earlier hubs, which are fixed for the
// whole BFS of hub k. Construction parallelizes *within* each BFS level
// (discover candidates per fixed-boundary chunk, dedupe in chunk order,
// then evaluate prune checks per node), so output is bit-identical at any
// thread count; chunk boundaries come from util::EffectiveGrain and never
// depend on the thread count.
//
// The flat representation is CSR-shaped (offsets + packed entry array)
// specifically so the serving layer can persist it as two pairs of
// checksummed `.widx` sections and mmap it back without re-deriving
// anything (serve/warm_index_cache.h).

#ifndef ELITENET_GRAPH_HUB_LABELS_H_
#define ELITENET_GRAPH_HUB_LABELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace graph {

/// Packs one label entry: high 32 bits the hub's rank in the degree order
/// (rank 0 = biggest hub), low 32 bits the BFS distance. Rows sorted by
/// packed value are sorted by hub rank, so intersection is a linear merge
/// and persistence is a plain u64 array.
using HubLabelEntry = uint64_t;

inline constexpr HubLabelEntry PackHubLabel(uint32_t hub_rank,
                                            uint32_t dist) {
  return (static_cast<uint64_t>(hub_rank) << 32) | dist;
}
inline constexpr uint32_t HubLabelRank(HubLabelEntry e) {
  return static_cast<uint32_t>(e >> 32);
}
inline constexpr uint32_t HubLabelDist(HubLabelEntry e) {
  return static_cast<uint32_t>(e);
}

struct HubLabelOptions {
  /// Construction budget: abort (returning an unbuilt oracle) once the
  /// average label count per node per direction exceeds this. Guards the
  /// pathological shapes where pruning cannot win — a long directed chain
  /// drives total label size toward O(n^2) — so callers degrade to
  /// query-time BFS instead of stalling startup. The default clears the
  /// verified network at bench scale (measured ~486/543 avg out/in
  /// entries at 40k users) with headroom, while a 20k-node chain still
  /// trips it within the first ~800 hubs. 0 disables the budget.
  uint32_t max_avg_label_entries = 768;
};

/// Aggregate label-size statistics (the bench/report surface).
struct HubLabelStats {
  uint64_t out_entries = 0;
  uint64_t in_entries = 0;
  uint32_t max_out_entries = 0;  ///< largest single L_out row
  uint32_t max_in_entries = 0;   ///< largest single L_in row
  double avg_out_entries = 0.0;
  double avg_in_entries = 0.0;
  uint64_t bytes = 0;  ///< flat arrays, offsets included
};

/// The flat 2-hop labeling. Default-constructed (or budget-aborted) state
/// is "not built": empty() is true and Distance must not be called.
class HubLabels {
 public:
  /// Node count the labeling describes; 0 when not built.
  NodeId num_nodes() const {
    return out_offsets_.empty()
               ? 0
               : static_cast<NodeId>(out_offsets_.size() - 1);
  }
  bool empty() const { return out_offsets_.empty(); }

  /// Exact directed distance s -> t by label intersection;
  /// UINT32_MAX (graph::kInfiniteDistance) when t is unreachable from s.
  /// Requires a built labeling and in-range ids.
  uint32_t Distance(NodeId s, NodeId t) const;

  HubLabelStats Stats() const;

  std::span<const HubLabelEntry> OutLabels(NodeId u) const {
    return {out_entries_.data() + out_offsets_[u],
            out_entries_.data() + out_offsets_[u + 1]};
  }
  std::span<const HubLabelEntry> InLabels(NodeId u) const {
    return {in_entries_.data() + in_offsets_[u],
            in_entries_.data() + in_offsets_[u + 1]};
  }

  /// Raw arrays for persistence (serve/warm_index_cache.cc).
  const std::vector<EdgeIdx>& out_offsets() const { return out_offsets_; }
  const std::vector<HubLabelEntry>& out_entries() const {
    return out_entries_;
  }
  const std::vector<EdgeIdx>& in_offsets() const { return in_offsets_; }
  const std::vector<HubLabelEntry>& in_entries() const {
    return in_entries_;
  }

  /// Adopts restored arrays (the sidecar load path). The caller must have
  /// run ValidateHubLabels first; this does no checking of its own.
  static HubLabels FromArrays(std::vector<EdgeIdx> out_offsets,
                              std::vector<HubLabelEntry> out_entries,
                              std::vector<EdgeIdx> in_offsets,
                              std::vector<HubLabelEntry> in_entries);

 private:
  friend HubLabels BuildHubLabels(const DiGraph& g,
                                  const HubLabelOptions& options);

  // Rows indexed by *original* node id; entries carry hub ranks.
  std::vector<EdgeIdx> out_offsets_;   ///< n+1, or empty when not built
  std::vector<HubLabelEntry> out_entries_;
  std::vector<EdgeIdx> in_offsets_;
  std::vector<HubLabelEntry> in_entries_;
};

/// Builds the pruned labeling. Returns an empty (unbuilt) HubLabels when
/// the construction budget is exceeded — never a partial labeling.
/// Bit-identical output at any util::ThreadCount().
HubLabels BuildHubLabels(const DiGraph& g,
                         const HubLabelOptions& options = {});

/// Structural validation for labelings restored from disk: offsets are
/// monotone and sized n+1, hub ranks are < n, distances are < n, and every
/// row is strictly ascending by hub rank. An empty labeling (all four
/// arrays empty) is valid — it means "oracle not built".
Status ValidateHubLabels(const HubLabels& labels, NodeId expected_nodes);

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_HUB_LABELS_H_

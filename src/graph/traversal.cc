#include "graph/traversal.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace elitenet {
namespace graph {
namespace {

// Edge-set adapters. Each direction supplies the successor iteration used
// by top-down levels, the predecessor probe used by bottom-up levels, and
// the successor-degree bookkeeping behind the Beamer switch heuristic.
// Bottom-up probes scan predecessor lists in ascending id order and stop
// at the first frontier hit, which is exactly the canonical minimum-id
// parent — early exit and determinism come from the same scan order.

struct ForwardAdj {
  const DiGraph& g;
  uint64_t TotalDegree() const { return g.num_edges(); }
  uint64_t SuccDegree(NodeId u) const { return g.OutDegree(u); }
  template <typename Fn>
  void ForEachSucc(NodeId u, Fn&& fn) const {
    for (NodeId v : g.OutNeighbors(u)) fn(v);
  }
  std::pair<NodeId, uint64_t> FindFrontierPred(
      NodeId v, const NodeBitmap& frontier) const {
    uint64_t probes = 0;
    for (NodeId u : g.InNeighbors(v)) {
      ++probes;
      if (frontier.Test(u)) return {u, probes};
    }
    return {kNoParent, probes};
  }
};

struct ReverseAdj {
  const DiGraph& g;
  uint64_t TotalDegree() const { return g.num_edges(); }
  uint64_t SuccDegree(NodeId u) const { return g.InDegree(u); }
  template <typename Fn>
  void ForEachSucc(NodeId u, Fn&& fn) const {
    for (NodeId v : g.InNeighbors(u)) fn(v);
  }
  std::pair<NodeId, uint64_t> FindFrontierPred(
      NodeId v, const NodeBitmap& frontier) const {
    uint64_t probes = 0;
    for (NodeId u : g.OutNeighbors(v)) {
      ++probes;
      if (frontier.Test(u)) return {u, probes};
    }
    return {kNoParent, probes};
  }
};

struct UndirectedAdj {
  const DiGraph& g;
  uint64_t TotalDegree() const { return 2 * g.num_edges(); }
  uint64_t SuccDegree(NodeId u) const {
    return static_cast<uint64_t>(g.OutDegree(u)) + g.InDegree(u);
  }
  template <typename Fn>
  void ForEachSucc(NodeId u, Fn&& fn) const {
    for (NodeId v : g.OutNeighbors(u)) fn(v);
    for (NodeId v : g.InNeighbors(u)) fn(v);
  }
  // Minimum-id frontier neighbor over the union: take the first hit of
  // each sorted list (each an early-exit scan) and keep the smaller.
  std::pair<NodeId, uint64_t> FindFrontierPred(
      NodeId v, const NodeBitmap& frontier) const {
    uint64_t probes = 0;
    NodeId best = kNoParent;
    for (NodeId u : g.OutNeighbors(v)) {
      ++probes;
      if (frontier.Test(u)) {
        best = u;
        break;
      }
    }
    for (NodeId u : g.InNeighbors(v)) {
      if (u >= best) break;  // sorted: no smaller hit possible past here
      ++probes;
      if (frontier.Test(u)) {
        best = u;
        break;
      }
    }
    return {best, probes};
  }
};

template <typename Adj>
BfsStats BfsImpl(const DiGraph& g, NodeId source, ScratchArena* arena,
                 const BfsOptions& opt, const Adj& adj) {
  BfsStats stats;
  const NodeId n = g.num_nodes();
  if (opt.fresh_epoch) arena->BeginEpoch();
  EN_CHECK_MSG(!arena->Visited(source), "BFS source already visited");

  uint64_t remaining = opt.remaining_degree != nullptr
                           ? *opt.remaining_degree
                           : adj.TotalDegree();

  std::vector<NodeId>& frontier = arena->frontier();
  std::vector<NodeId>& next = arena->next();
  frontier.clear();
  next.clear();

  arena->Visit(source, 0, source);
  frontier.push_back(source);
  stats.nodes_visited = 1;
  if (opt.visit_order != nullptr) opt.visit_order->push_back(source);
  uint64_t frontier_degree = adj.SuccDegree(source);
  remaining -= frontier_degree;

  bool bottom_up = false;
  bool frontier_bits_valid = false;
  bool unvisited_bits_valid = false;
  uint32_t level = 0;

  while (!frontier.empty()) {
    ++level;

    // Per-level direction decision (Beamer heuristics). Inputs — frontier
    // size, frontier successor degree, remaining unvisited degree — are
    // functions of the graph and the level sets alone, so the decision is
    // identical on every run at every thread count.
    bool want_bottom_up = false;
    switch (opt.mode) {
      case BfsMode::kClassic:
        want_bottom_up = false;
        break;
      case BfsMode::kBottomUp:
        want_bottom_up = true;
        break;
      case BfsMode::kDirectionOptimizing:
        if (!bottom_up) {
          want_bottom_up =
              frontier.size() >= opt.min_bottom_up_frontier &&
              static_cast<double>(frontier_degree) * opt.alpha >
                  static_cast<double>(remaining);
        } else {
          want_bottom_up = static_cast<double>(frontier.size()) * opt.beta >=
                           static_cast<double>(n);
        }
        break;
    }
    if (want_bottom_up != bottom_up) {
      ++stats.direction_switches;
      bottom_up = want_bottom_up;
    }

    next.clear();
    uint64_t next_degree = 0;

    if (!bottom_up) {
      // Top-down: scan the sparse frontier's successor rows.
      for (NodeId u : frontier) {
        adj.ForEachSucc(u, [&](NodeId v) {
          ++stats.edges_scanned;
          if (!arena->Visited(v)) {
            arena->Visit(v, level, u);
            next.push_back(v);
            next_degree += adj.SuccDegree(v);
          } else if (opt.compute_parents && arena->Distance(v) == level &&
                     u < arena->Parent(v)) {
            // Canonical tie-break: keep the minimum-id predecessor.
            arena->SetParent(v, u);
          }
        });
      }
      if (opt.visit_order != nullptr) {
        std::sort(next.begin(), next.end());
      }
      // Top-down visits bypass the dense structures; rebuild on re-entry.
      frontier_bits_valid = false;
      unvisited_bits_valid = false;
    } else {
      // Bottom-up: iterate unvisited nodes word-at-a-time and probe their
      // predecessor rows against the dense frontier bitmap. Discovery
      // order is ascending id, so `next` needs no canonicalizing sort.
      ++stats.bottom_up_levels;
      NodeBitmap& fbits = arena->frontier_bits();
      NodeBitmap& nbits = arena->next_bits();
      NodeBitmap& ubits = arena->unvisited_bits();
      if (!frontier_bits_valid) {
        fbits.ClearAll();
        for (NodeId u : frontier) fbits.Set(u);
      }
      if (!unvisited_bits_valid) {
        ubits.ClearAll();
        for (NodeId v = 0; v < n; ++v) {
          if (!arena->Visited(v)) ubits.Set(v);
        }
        unvisited_bits_valid = true;
      }
      nbits.ClearAll();
      const std::vector<uint64_t>& words = ubits.words();
      for (size_t wi = 0; wi < words.size(); ++wi) {
        uint64_t w = words[wi];
        while (w != 0) {
          const NodeId v =
              static_cast<NodeId>(wi * 64 + std::countr_zero(w));
          w &= w - 1;
          const auto [parent, probes] = adj.FindFrontierPred(v, fbits);
          stats.edges_scanned += probes;
          if (parent != kNoParent) {
            arena->Visit(v, level, parent);
            next.push_back(v);
            nbits.Set(v);
            ubits.Clear(v);
            next_degree += adj.SuccDegree(v);
          }
        }
      }
      std::swap(fbits, nbits);  // next level's frontier bitmap, ready-made
      frontier_bits_valid = true;
    }

    if (!next.empty()) {
      stats.levels = level;
      stats.nodes_visited += next.size();
      if (opt.visit_order != nullptr) {
        opt.visit_order->insert(opt.visit_order->end(), next.begin(),
                                next.end());
      }
    }
    remaining -= next_degree;
    frontier_degree = next_degree;
    frontier.swap(next);
  }

  if (opt.remaining_degree != nullptr) *opt.remaining_degree = remaining;

  ELITENET_COUNT("graph.bfs.runs", 1);
  ELITENET_COUNT("graph.bfs.edges_scanned", stats.edges_scanned);
  if (stats.direction_switches > 0) {
    ELITENET_COUNT("graph.bfs.direction_switches", stats.direction_switches);
    ELITENET_COUNT("graph.bfs.bottom_up_levels", stats.bottom_up_levels);
  }
  return stats;
}

}  // namespace

BfsStats Bfs(const DiGraph& g, NodeId source, ScratchArena* arena,
             const BfsOptions& options) {
  EN_CHECK(arena != nullptr);
  EN_CHECK(source < g.num_nodes());
  EN_CHECK_EQ(arena->num_nodes(), g.num_nodes());
  switch (options.direction) {
    case TraversalDirection::kReverse:
      return BfsImpl(g, source, arena, options, ReverseAdj{g});
    case TraversalDirection::kUndirected:
      return BfsImpl(g, source, arena, options, UndirectedAdj{g});
    case TraversalDirection::kForward:
    default:
      return BfsImpl(g, source, arena, options, ForwardAdj{g});
  }
}

UndirectedCsr BuildUndirectedCsr(const DiGraph& g) {
  const NodeId n = g.num_nodes();
  UndirectedCsr csr;
  csr.offsets.assign(static_cast<size_t>(n) + 1, 0);

  // Exact-size layout in two merge scans. A count pass walks each row's
  // sorted out/in merge without writing, so the targets array is
  // allocated at its final (deduplicated) size — peak residency is the
  // merged size itself, never the out+in upper bound, which at the
  // paper's reciprocity overshoots by ~17% and at full reciprocity by 2x.
  // Rows are disjoint, so both passes parallelize with no coordination
  // and are trivially deterministic.
  util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
    for (size_t x = lo; x < hi; ++x) {
      const NodeId u = static_cast<NodeId>(x);
      const auto a = g.OutNeighbors(u);
      const auto b = g.InNeighbors(u);
      size_t i = 0, j = 0;
      EdgeIdx count = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
          ++i;
          ++j;
        } else if (a[i] < b[j]) {
          ++i;
        } else {
          ++j;
        }
        ++count;
      }
      count += static_cast<EdgeIdx>(a.size() - i);
      count += static_cast<EdgeIdx>(b.size() - j);
      csr.offsets[x + 1] = count;
    }
  });
  for (size_t x = 0; x < n; ++x) csr.offsets[x + 1] += csr.offsets[x];

  csr.targets.resize(csr.offsets[n]);
  util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
    for (size_t x = lo; x < hi; ++x) {
      const NodeId u = static_cast<NodeId>(x);
      const auto a = g.OutNeighbors(u);
      const auto b = g.InNeighbors(u);
      size_t i = 0, j = 0;
      EdgeIdx w = csr.offsets[x];
      while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
          csr.targets[w++] = a[i];
          ++i;
          ++j;
        } else if (a[i] < b[j]) {
          csr.targets[w++] = a[i++];
        } else {
          csr.targets[w++] = b[j++];
        }
      }
      while (i < a.size()) csr.targets[w++] = a[i++];
      while (j < b.size()) csr.targets[w++] = b[j++];
    }
  });
  return csr;
}

}  // namespace graph
}  // namespace elitenet

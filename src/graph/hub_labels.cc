#include "graph/hub_labels.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/frontier.h"
#include "graph/traversal.h"
#include "util/parallel.h"

namespace elitenet {
namespace graph {
namespace {

// One pruned BFS from `root` on the relabeled graph. Forward BFSs expand
// out-edges and append (root, d(root->v)) to L_in(v); backward BFSs expand
// in-edges and append to L_out(v). In both cases the rows being appended to
// are exactly the rows the prune query reads, so the routine takes just one
// row array plus the dense distance view of the root's *opposite* label set
// (root_dist[h] = d(root->h) forward, d(h->root) backward).
//
// Level-synchronous with three parallel-safe phases per level:
//   A (parallel) gather unvisited neighbors per fixed-boundary frontier
//     chunk into chunk-local buffers — reads the arena, writes nothing
//     shared;
//   B (serial) walk the chunk buffers in chunk order, first-come dedupe via
//     arena.Visit — the only phase that mutates traversal state;
//   C (parallel) per deduped candidate, run the prune query against its own
//     row and append the new label on survival — rows are disjoint per
//     node, so no two workers ever touch the same vector;
//   D (serial) compact survivors into the next frontier.
// Chunk boundaries come from EffectiveGrain, so every phase computes the
// same thing at any thread count.
//
// Prune soundness: a candidate's row holds only hubs ranked before `root`
// (a (root, ·) entry would mean the node was already visited in this BFS),
// and root_dist is densified from rows that this BFS never appends to, so
// the query is exactly Query_{root-1} — fixed for the whole BFS, which is
// what lets level-parallel evaluation match the sequential algorithm
// label-for-label.
//
// Returns the number of labels appended.
uint64_t PrunedBfs(const DiGraph& rg, NodeId root, bool forward,
                   std::vector<std::vector<HubLabelEntry>>& rows,
                   const std::vector<uint32_t>& root_dist,
                   ScratchArena& arena, std::vector<NodeId>& candidates,
                   std::vector<uint8_t>& keep,
                   std::vector<std::vector<NodeId>>& chunk_buf) {
  arena.BeginEpoch();
  arena.Visit(root, 0, root);
  // The root is never prunable: hubs before it cannot certify distance 0.
  rows[root].push_back(PackHubLabel(root, 0));
  uint64_t appended = 1;

  std::vector<NodeId>& frontier = arena.frontier();
  frontier.clear();
  frontier.push_back(root);

  // Below this frontier width the phased machinery costs more than the
  // level itself (two closure dispatches per level bites hard on
  // high-diameter graphs, where every frontier is a handful of nodes).
  // The serial path walks the frontier in index order — the exact order
  // the chunked phases produce — so the two paths are interchangeable
  // without affecting output.
  constexpr size_t kSerialFrontier = 256;
  // With one worker the phases degrade to three extra passes over the
  // candidate set (plus duplicate neighbor writes into the chunk
  // buffers), so a solo pool always takes the serial path.
  const bool serial_pool = util::ThreadCount() <= 1;

  for (uint32_t depth = 1; !frontier.empty(); ++depth) {
    if (serial_pool || frontier.size() <= kSerialFrontier) {
      candidates.clear();
      for (const NodeId u : frontier) {
        for (const NodeId v :
             forward ? rg.OutNeighbors(u) : rg.InNeighbors(u)) {
          if (!arena.Visited(v)) {
            arena.Visit(v, depth, v);
            candidates.push_back(v);
          }
        }
      }
      if (candidates.empty()) break;
      frontier.clear();
      for (const NodeId v : candidates) {
        // Only the boolean "is there a certificate <= depth" matters, so
        // stop at the first one — rows lead with the highest-degree hubs,
        // which certify almost every pruned candidate in one or two
        // probes. (Without the break this loop is the build's hot spot.)
        bool pruned = false;
        for (const HubLabelEntry e : rows[v]) {
          const uint32_t rd = root_dist[HubLabelRank(e)];
          if (rd == kInfiniteDistance) continue;
          if (uint64_t{rd} + HubLabelDist(e) <= depth) {
            pruned = true;
            break;
          }
        }
        if (pruned) continue;
        rows[v].push_back(PackHubLabel(root, depth));
        frontier.push_back(v);
        ++appended;
      }
      continue;
    }

    // Phase A: gather candidate neighbors per chunk.
    const size_t step = util::EffectiveGrain(frontier.size(), 0);
    const size_t chunks = (frontier.size() + step - 1) / step;
    if (chunk_buf.size() < chunks) chunk_buf.resize(chunks);
    util::ParallelFor(0, frontier.size(), step, [&](size_t lo, size_t hi) {
      std::vector<NodeId>& buf = chunk_buf[lo / step];
      buf.clear();
      for (size_t i = lo; i < hi; ++i) {
        const NodeId u = frontier[i];
        for (const NodeId v :
             forward ? rg.OutNeighbors(u) : rg.InNeighbors(u)) {
          if (!arena.Visited(v)) buf.push_back(v);
        }
      }
    });

    // Phase B: first-come dedupe in chunk order; mark visited.
    candidates.clear();
    for (size_t c = 0; c < chunks; ++c) {
      for (const NodeId v : chunk_buf[c]) {
        if (!arena.Visited(v)) {
          arena.Visit(v, depth, v);
          candidates.push_back(v);
        }
      }
    }
    if (candidates.empty()) break;

    // Phase C: prune query + label append, disjoint row per candidate.
    keep.assign(candidates.size(), 0);
    util::ParallelFor(0, candidates.size(), 0, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const NodeId v = candidates[i];
        // First certificate wins, same early exit as the serial path.
        bool pruned = false;
        for (const HubLabelEntry e : rows[v]) {
          const uint32_t rd = root_dist[HubLabelRank(e)];
          if (rd == kInfiniteDistance) continue;
          if (uint64_t{rd} + HubLabelDist(e) <= depth) {
            pruned = true;
            break;
          }
        }
        if (pruned) continue;  // no label, no expansion
        rows[v].push_back(PackHubLabel(root, depth));
        keep[i] = 1;
      }
    });

    // Phase D: survivors become the next frontier.
    frontier.clear();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (keep[i]) {
        frontier.push_back(candidates[i]);
        ++appended;
      }
    }
  }
  return appended;
}

// Flattens per-node rows (indexed by relabeled id) into a CSR pair indexed
// by original id. Rows are already sorted ascending by hub rank — labels
// were appended in hub-processing order.
void Flatten(const std::vector<std::vector<HubLabelEntry>>& rows,
             const std::vector<NodeId>& old_to_new,
             std::vector<EdgeIdx>* offsets,
             std::vector<HubLabelEntry>* entries) {
  const size_t n = old_to_new.size();
  offsets->resize(n + 1);
  (*offsets)[0] = 0;
  for (size_t o = 0; o < n; ++o) {
    (*offsets)[o + 1] = (*offsets)[o] + rows[old_to_new[o]].size();
  }
  entries->resize((*offsets)[n]);
  util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
    for (size_t o = lo; o < hi; ++o) {
      const std::vector<HubLabelEntry>& row = rows[old_to_new[o]];
      std::copy(row.begin(), row.end(), entries->begin() + (*offsets)[o]);
    }
  });
}

}  // namespace

uint32_t HubLabels::Distance(NodeId s, NodeId t) const {
  if (s == t) return 0;
  const std::span<const HubLabelEntry> out = OutLabels(s);
  const std::span<const HubLabelEntry> in = InLabels(t);
  uint64_t best = UINT64_MAX;
  size_t i = 0;
  size_t j = 0;
  while (i < out.size() && j < in.size()) {
    const uint32_t ho = HubLabelRank(out[i]);
    const uint32_t hi = HubLabelRank(in[j]);
    if (ho < hi) {
      ++i;
    } else if (hi < ho) {
      ++j;
    } else {
      const uint64_t d =
          uint64_t{HubLabelDist(out[i])} + HubLabelDist(in[j]);
      if (d < best) best = d;
      ++i;
      ++j;
    }
  }
  return best == UINT64_MAX ? kInfiniteDistance
                            : static_cast<uint32_t>(best);
}

HubLabelStats HubLabels::Stats() const {
  HubLabelStats stats;
  const NodeId n = num_nodes();
  stats.out_entries = out_entries_.size();
  stats.in_entries = in_entries_.size();
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t out_row =
        static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
    const uint32_t in_row =
        static_cast<uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
    if (out_row > stats.max_out_entries) stats.max_out_entries = out_row;
    if (in_row > stats.max_in_entries) stats.max_in_entries = in_row;
  }
  if (n > 0) {
    stats.avg_out_entries = static_cast<double>(stats.out_entries) / n;
    stats.avg_in_entries = static_cast<double>(stats.in_entries) / n;
  }
  stats.bytes = (out_offsets_.size() + in_offsets_.size()) * sizeof(EdgeIdx) +
                (out_entries_.size() + in_entries_.size()) *
                    sizeof(HubLabelEntry);
  return stats;
}

HubLabels HubLabels::FromArrays(std::vector<EdgeIdx> out_offsets,
                                std::vector<HubLabelEntry> out_entries,
                                std::vector<EdgeIdx> in_offsets,
                                std::vector<HubLabelEntry> in_entries) {
  HubLabels labels;
  labels.out_offsets_ = std::move(out_offsets);
  labels.out_entries_ = std::move(out_entries);
  labels.in_offsets_ = std::move(in_offsets);
  labels.in_entries_ = std::move(in_entries);
  return labels;
}

HubLabels BuildHubLabels(const DiGraph& g, const HubLabelOptions& options) {
  HubLabels labels;
  const NodeId n = g.num_nodes();
  if (n == 0) {
    labels.out_offsets_.assign(1, 0);
    labels.in_offsets_.assign(1, 0);
    return labels;
  }

  const DegreeRelabeling rel = g.RelabelByDegree();
  const DiGraph& rg = rel.graph;

  // Rows indexed by relabeled id == hub rank; hub rank r processes node r.
  std::vector<std::vector<HubLabelEntry>> out_rows(n);
  std::vector<std::vector<HubLabelEntry>> in_rows(n);
  uint64_t total_out = 0;
  uint64_t total_in = 0;
  const uint64_t budget =
      options.max_avg_label_entries == 0
          ? UINT64_MAX
          : static_cast<uint64_t>(options.max_avg_label_entries) * n;

  ScratchArena arena(n);
  std::vector<uint32_t> root_dist(n, kInfiniteDistance);
  std::vector<NodeId> candidates;
  std::vector<uint8_t> keep;
  std::vector<std::vector<NodeId>> chunk_buf;

  for (NodeId r = 0; r < n; ++r) {
    // Forward: L_out(r) (hubs before r that r reaches) densifies the prune
    // query for appends into L_in. The densified row is never appended to
    // by this BFS, so the view stays valid throughout.
    for (const HubLabelEntry e : out_rows[r]) {
      root_dist[HubLabelRank(e)] = HubLabelDist(e);
    }
    total_in += PrunedBfs(rg, r, /*forward=*/true, in_rows, root_dist,
                          arena, candidates, keep, chunk_buf);
    for (const HubLabelEntry e : out_rows[r]) {
      root_dist[HubLabelRank(e)] = kInfiniteDistance;
    }
    if (total_in > budget) return HubLabels{};

    // Backward over in-edges: L_in(r) drives the prune query for L_out.
    for (const HubLabelEntry e : in_rows[r]) {
      root_dist[HubLabelRank(e)] = HubLabelDist(e);
    }
    total_out += PrunedBfs(rg, r, /*forward=*/false, out_rows, root_dist,
                           arena, candidates, keep, chunk_buf);
    for (const HubLabelEntry e : in_rows[r]) {
      root_dist[HubLabelRank(e)] = kInfiniteDistance;
    }
    if (total_out > budget) return HubLabels{};
  }

  Flatten(out_rows, rel.old_to_new, &labels.out_offsets_,
          &labels.out_entries_);
  Flatten(in_rows, rel.old_to_new, &labels.in_offsets_, &labels.in_entries_);
  return labels;
}

namespace {

Status ValidateSide(const char* side, const std::vector<EdgeIdx>& offsets,
                    const std::vector<HubLabelEntry>& entries, NodeId n) {
  if (offsets.size() != static_cast<size_t>(n) + 1) {
    return Status::Corruption(std::string("hub label ") + side +
                              " offsets have wrong length");
  }
  if (offsets[0] != 0 || offsets[n] != entries.size()) {
    return Status::Corruption(std::string("hub label ") + side +
                              " offsets do not span the entry array");
  }
  for (NodeId u = 0; u < n; ++u) {
    if (offsets[u + 1] < offsets[u]) {
      return Status::Corruption(std::string("hub label ") + side +
                                " offsets decrease");
    }
    uint64_t prev_rank = UINT64_MAX;
    for (EdgeIdx i = offsets[u]; i < offsets[u + 1]; ++i) {
      const uint32_t rank = HubLabelRank(entries[i]);
      const uint32_t dist = HubLabelDist(entries[i]);
      if (rank >= n || dist >= n) {
        return Status::Corruption(std::string("hub label ") + side +
                                  " entry out of range");
      }
      if (prev_rank != UINT64_MAX && rank <= prev_rank) {
        return Status::Corruption(std::string("hub label ") + side +
                                  " row not strictly ascending");
      }
      prev_rank = rank;
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateHubLabels(const HubLabels& labels, NodeId expected_nodes) {
  if (labels.empty()) {
    // "Oracle not built" is a legal persisted state, but only when all
    // four arrays are absent together.
    if (!labels.out_entries().empty() || !labels.in_offsets().empty() ||
        !labels.in_entries().empty()) {
      return Status::Corruption("hub labels partially present");
    }
    return Status::OK();
  }
  EN_RETURN_IF_ERROR(ValidateSide("out", labels.out_offsets(),
                                  labels.out_entries(), expected_nodes));
  EN_RETURN_IF_ERROR(ValidateSide("in", labels.in_offsets(),
                                  labels.in_entries(), expected_nodes));
  return Status::OK();
}

}  // namespace graph
}  // namespace elitenet

#include "graph/frontier.h"

#include <bit>

namespace elitenet {
namespace graph {

uint64_t CountSetBits(const NodeBitmap& bits) {
  uint64_t count = 0;
  for (uint64_t w : bits.words()) count += std::popcount(w);
  return count;
}

void ExtractSetBits(const NodeBitmap& bits, std::vector<NodeId>* out) {
  out->clear();
  const std::vector<uint64_t>& words = bits.words();
  for (size_t wi = 0; wi < words.size(); ++wi) {
    uint64_t w = words[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out->push_back(static_cast<NodeId>(wi * 64 + b));
      w &= w - 1;
    }
  }
}

}  // namespace graph
}  // namespace elitenet

// Immutable directed graph in compressed sparse row (CSR) form.
//
// DiGraph stores both the forward adjacency (out-neighbors) and the reverse
// adjacency (in-neighbors), each as a CSR pair of (offsets, targets). Node
// ids are dense 32-bit integers [0, num_nodes). Edge counts use 64 bits:
// the paper-scale graph has 79,213,811 edges and the design leaves headroom.
//
// Storage model: the four CSR arrays are immutable views (std::span) into
// a refcounted backing block. The block is either heap vectors (the
// GraphBuilder path) or externally owned memory such as a read-only file
// mapping (graph/io.h MapBinary over util/mmap_file.h) — every kernel in
// analysis/ runs unchanged on either. Because the storage never mutates,
// copies, Transpose(), and pass-by-value are O(1) pointer shares, not
// O(m) array copies.
//
// Construction goes through GraphBuilder (graph/builder.h), which sorts and
// deduplicates; every algorithm in analysis/ takes `const DiGraph&`.

#ifndef ELITENET_GRAPH_DIGRAPH_H_
#define ELITENET_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/check.h"

namespace elitenet {
namespace graph {

using NodeId = uint32_t;
using EdgeIdx = uint64_t;

/// An immutable directed graph with O(1) out- and in-neighbor access.
class DiGraph {
 public:
  /// Empty graph with zero nodes.
  DiGraph();

  /// Takes ownership of prebuilt CSR arrays. `out_offsets` must have
  /// num_nodes+1 entries, be non-decreasing, start at 0 and end at
  /// out_targets.size(); neighbor lists must be sorted ascending and
  /// duplicate-free. Same for the reverse CSR, which must describe the
  /// exact transpose edge multiset. GraphBuilder guarantees all of this.
  DiGraph(std::vector<EdgeIdx> out_offsets, std::vector<NodeId> out_targets,
          std::vector<EdgeIdx> in_offsets, std::vector<NodeId> in_targets);

  /// Borrowed-storage mode: views over memory owned elsewhere (typically
  /// a read-only mmap of an ENG2 snapshot). `keepalive` is retained for
  /// the graph's lifetime — and the lifetime of every copy — so the
  /// views can never dangle. The caller must have validated the same CSR
  /// invariants the owning constructor documents.
  static DiGraph FromBorrowed(std::span<const EdgeIdx> out_offsets,
                              std::span<const NodeId> out_targets,
                              std::span<const EdgeIdx> in_offsets,
                              std::span<const NodeId> in_targets,
                              std::shared_ptr<const void> keepalive);

  /// Copies share the immutable backing block: O(1).
  DiGraph(const DiGraph&) = default;
  DiGraph& operator=(const DiGraph&) = default;
  /// Moved-from graphs reset to the empty state (valid, zero nodes).
  DiGraph(DiGraph&& other) noexcept;
  DiGraph& operator=(DiGraph&& other) noexcept;

  NodeId num_nodes() const {
    return static_cast<NodeId>(out_offsets_.size() - 1);
  }
  EdgeIdx num_edges() const { return out_targets_.size(); }

  /// Out-neighbors of `u`, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    EN_CHECK(u < num_nodes());
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbors of `u`, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId u) const {
    EN_CHECK(u < num_nodes());
    return {in_targets_.data() + in_offsets_[u],
            in_targets_.data() + in_offsets_[u + 1]};
  }

  uint32_t OutDegree(NodeId u) const {
    EN_CHECK(u < num_nodes());
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  uint32_t InDegree(NodeId u) const {
    EN_CHECK(u < num_nodes());
    return static_cast<uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  /// True iff edge u->v exists. Degree-adaptive: linear scan of the sorted
  /// row below kHasEdgeLinearThreshold neighbors (branch-predictable, no
  /// pivot arithmetic), binary search above.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Row length below which HasEdge scans linearly instead of bisecting.
  static constexpr uint32_t kHasEdgeLinearThreshold = 8;

  /// Edge density m / (n * (n-1)); 0 for graphs with fewer than 2 nodes.
  double Density() const;

  /// Nodes with neither in- nor out-edges.
  uint64_t CountIsolated() const;

  /// Raw CSR access, for serialization and tight algorithm loops.
  std::span<const EdgeIdx> out_offsets() const { return out_offsets_; }
  std::span<const NodeId> out_targets() const { return out_targets_; }
  std::span<const EdgeIdx> in_offsets() const { return in_offsets_; }
  std::span<const NodeId> in_targets() const { return in_targets_; }

  /// True when the CSR views point into externally owned memory (a file
  /// mapping) rather than heap vectors built by this process.
  bool borrows_storage() const { return borrowed_; }

  /// Returns the transpose graph (every edge reversed). O(1): shares the
  /// backing block with the two CSR halves swapped.
  DiGraph Transpose() const;

  /// Relabels nodes in descending total-degree (out + in) order, ties
  /// broken by ascending original id. On skewed graphs this packs the hubs
  /// — the rows traversals touch most — into the front of the CSR arrays
  /// for cache locality. See DegreeRelabeling for mapping results back.
  struct DegreeRelabeling RelabelByDegree() const;

  /// Structural equality (same node count and identical edge sets).
  bool operator==(const DiGraph& other) const;

 private:
  struct VectorStorage;  // heap backing for the owning constructor

  std::span<const EdgeIdx> out_offsets_;
  std::span<const NodeId> out_targets_;
  std::span<const EdgeIdx> in_offsets_;
  std::span<const NodeId> in_targets_;
  /// Keeps the viewed memory alive: a VectorStorage block, a file
  /// mapping, or (for the empty graph) nothing.
  std::shared_ptr<const void> keepalive_;
  bool borrowed_ = false;
};

/// A degree-ordered relabeling of a DiGraph: the permuted graph plus both
/// directions of the id mapping. Results computed on `graph` map back to
/// original ids via new_to_old (and sources map in via old_to_new);
/// permutation-invariant aggregates (distance histograms, component sizes,
/// coreness multisets) need no mapping at all.
struct DegreeRelabeling {
  DiGraph graph;
  /// new id -> original id (the sort order).
  std::vector<NodeId> new_to_old;
  /// original id -> new id (the inverse permutation).
  std::vector<NodeId> old_to_new;
};

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_DIGRAPH_H_

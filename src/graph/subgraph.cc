#include "graph/subgraph.h"

#include <string>

#include "graph/builder.h"

namespace elitenet {
namespace graph {

Result<InducedSubgraph> Induce(const DiGraph& g,
                               const std::vector<NodeId>& keep) {
  std::vector<bool> mask(g.num_nodes(), false);
  for (NodeId u : keep) {
    if (u >= g.num_nodes()) {
      return Status::OutOfRange("node " + std::to_string(u) +
                                " not in graph");
    }
    if (mask[u]) {
      return Status::InvalidArgument("duplicate node " + std::to_string(u) +
                                     " in keep set");
    }
    mask[u] = true;
  }
  return InduceByMask(g, mask);
}

Result<InducedSubgraph> InduceByMask(const DiGraph& g,
                                     const std::vector<bool>& mask) {
  if (mask.size() != g.num_nodes()) {
    return Status::InvalidArgument("mask size mismatch");
  }
  InducedSubgraph out;
  out.to_sub.assign(g.num_nodes(), InducedSubgraph::kNotInSubgraph);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (mask[u]) {
      out.to_sub[u] = static_cast<NodeId>(out.to_original.size());
      out.to_original.push_back(u);
    }
  }

  GraphBuilder builder(static_cast<NodeId>(out.to_original.size()));
  for (NodeId new_u = 0; new_u < out.to_original.size(); ++new_u) {
    const NodeId old_u = out.to_original[new_u];
    for (NodeId old_v : g.OutNeighbors(old_u)) {
      const NodeId new_v = out.to_sub[old_v];
      if (new_v != InducedSubgraph::kNotInSubgraph) {
        EN_RETURN_IF_ERROR(builder.AddEdge(new_u, new_v));
      }
    }
  }
  EN_ASSIGN_OR_RETURN(out.graph, builder.Build());
  return out;
}

}  // namespace graph
}  // namespace elitenet

// Subgraph induction — the paper's core data operation: the verified-user
// network *is* the subgraph of Twitter induced by verified nodes, and the
// English network is a further induced subgraph. The same primitive also
// extracts the giant component for distance analysis.

#ifndef ELITENET_GRAPH_SUBGRAPH_H_
#define ELITENET_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace graph {

/// An induced subgraph plus the mapping between old and new node ids.
struct InducedSubgraph {
  DiGraph graph;
  /// new id -> old id, size == graph.num_nodes().
  std::vector<NodeId> to_original;
  /// old id -> new id, or kNotInSubgraph.
  std::vector<NodeId> to_sub;

  static constexpr NodeId kNotInSubgraph = static_cast<NodeId>(-1);
};

/// Induces the subgraph on `keep` (a node subset of g, any order,
/// duplicates rejected). Edges are kept iff both endpoints are kept.
Result<InducedSubgraph> Induce(const DiGraph& g,
                               const std::vector<NodeId>& keep);

/// Induces on the nodes where mask[u] is true. mask.size() must equal
/// g.num_nodes().
Result<InducedSubgraph> InduceByMask(const DiGraph& g,
                                     const std::vector<bool>& mask);

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_SUBGRAPH_H_

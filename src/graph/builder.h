// Mutable edge accumulator that finalizes into an immutable DiGraph.
//
// GraphBuilder accepts edges in any order, drops self-loops (optional) and
// duplicates, and produces sorted CSR adjacency via a two-pass counting
// sort keyed by source — O(m) placement plus per-row neighbor sorts
// (O(m log max_degree) total, parallel across rows). It is the only
// sanctioned way to construct a DiGraph from scratch.

#ifndef ELITENET_GRAPH_BUILDER_H_
#define ELITENET_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace graph {

class GraphBuilder {
 public:
  struct Options {
    /// Drop u->u edges instead of failing. The Twitter follow graph has no
    /// self-follows, so generators keep this on.
    bool drop_self_loops = true;
    /// Duplicate edges are always coalesced; set to false to treat a
    /// duplicate as a Status error instead (strict ingest mode).
    bool allow_duplicates = true;
  };

  /// `num_nodes` fixes the id space up front; edges must reference ids in
  /// [0, num_nodes).
  explicit GraphBuilder(NodeId num_nodes) : GraphBuilder(num_nodes, Options()) {}
  GraphBuilder(NodeId num_nodes, Options options);

  NodeId num_nodes() const { return num_nodes_; }

  /// Number of edges currently buffered (before dedup).
  size_t buffered_edges() const { return edges_.size(); }

  /// Appends one directed edge u -> v.
  Status AddEdge(NodeId u, NodeId v);

  /// Appends a batch of edges.
  Status AddEdges(const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Reserves buffer capacity for `n` edges.
  void Reserve(size_t n) { edges_.reserve(n); }

  /// True iff the exact edge is already buffered. O(buffered) — intended
  /// for tests and small graphs only.
  bool ContainsBuffered(NodeId u, NodeId v) const;

  /// Sorts, deduplicates, and builds the CSR pair. The builder is left
  /// empty and reusable afterwards.
  Result<DiGraph> Build();

 private:
  NodeId num_nodes_;
  Options options_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  bool saw_duplicate_ = false;
};

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_BUILDER_H_

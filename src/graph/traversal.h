// Direction-optimizing traversal kernels (Beamer, Asanović & Patterson,
// SC'12) over the CSR DiGraph, plus the flat undirected-adjacency helper
// the peeling kernels use.
//
// A classic top-down BFS scans every out-edge of the frontier. On
// low-diameter skewed graphs — exactly the shape of the verified-user
// network (mean separation 2.74, power-law degrees) — the middle levels
// hold most of the graph, and it is far cheaper to flip direction: iterate
// the *unvisited* nodes (a bitmap) and probe their in-edges until any
// parent in the current frontier is found, short-circuiting the rest of
// the row. The kernel switches per level with the standard edge-count
// heuristics:
//
//   top-down -> bottom-up  when  frontier_out_degree > unvisited_degree/alpha
//   bottom-up -> top-down  when  |frontier| < n / beta
//
// Determinism: distances are level-exact and therefore identical in every
// mode. Parents use a canonical tie-break — parent(v) is the *minimum-id*
// predecessor at distance dist(v)-1 — which top-down enforces with a min
// update and bottom-up gets for free from ascending in-neighbor scans, so
// {classic, direction-optimizing, forced bottom-up} produce bit-identical
// trees. Visit order, when collected, is canonicalized to ascending id
// within each level. Each traversal runs on one thread against one
// ScratchArena; callers parallelize across sources with per-block arenas.

#ifndef ELITENET_GRAPH_TRAVERSAL_H_
#define ELITENET_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "graph/frontier.h"

namespace elitenet {
namespace graph {

/// Sentinel distance for unreached nodes (matches analysis::kUnreachable).
inline constexpr uint32_t kInfiniteDistance = UINT32_MAX;
/// Sentinel parent id.
inline constexpr NodeId kNoParent = UINT32_MAX;

enum class BfsMode : uint8_t {
  /// Classic top-down queue BFS at every level (the reference baseline).
  kClassic,
  /// Beamer-style per-level direction switching (the default).
  kDirectionOptimizing,
  /// Bottom-up at every level after the source (test/bench hook).
  kBottomUp,
};

/// Which edge set defines a traversal step u -> v.
enum class TraversalDirection : uint8_t {
  kForward,     ///< out-edges (successors = OutNeighbors)
  kReverse,     ///< in-edges (successors = InNeighbors)
  kUndirected,  ///< both (successors = OutNeighbors ∪ InNeighbors)
};

struct BfsOptions {
  BfsMode mode = BfsMode::kDirectionOptimizing;
  TraversalDirection direction = TraversalDirection::kForward;

  /// Record canonical parents (min-id predecessor one level closer).
  bool compute_parents = false;

  /// When non-null, visited nodes are *appended* level by level, ascending
  /// id within each level (the canonical order Brandes consumes).
  std::vector<NodeId>* visit_order = nullptr;

  /// When false the kernel does not call arena->BeginEpoch(): nodes already
  /// visited in the caller's epoch act as walls, letting multi-root sweeps
  /// (WCC) share one epoch. The caller must have called BeginEpoch itself.
  bool fresh_epoch = true;

  /// In/out running total of successor-side degree over unvisited nodes,
  /// for multi-root sweeps that would otherwise recompute it per root.
  /// When null the kernel derives the initial value from the graph.
  uint64_t* remaining_degree = nullptr;

  /// Beamer switching parameters (SC'12 defaults).
  double alpha = 14.0;
  double beta = 24.0;
  /// Never go bottom-up from a frontier smaller than this: tiny frontiers
  /// (small components, chain graphs) would pay the O(n/64) bitmap sweeps
  /// without amortizing them.
  uint32_t min_bottom_up_frontier = 128;
};

struct BfsStats {
  uint32_t levels = 0;             ///< BFS depth reached (last non-empty level).
  uint64_t nodes_visited = 0;      ///< includes the source
  uint64_t edges_scanned = 0;      ///< edge probes actually performed
  uint32_t direction_switches = 0; ///< top-down <-> bottom-up flips
  uint32_t bottom_up_levels = 0;
};

/// Single-source BFS from `source`. Results (visited/dist/parent) live in
/// `arena` until its next BeginEpoch/Reset; read them with
/// arena->DistanceOr(v, kInfiniteDistance) etc. The arena must be sized
/// for `g` (arena->num_nodes() == g.num_nodes()).
BfsStats Bfs(const DiGraph& g, NodeId source, ScratchArena* arena,
             const BfsOptions& options = {});

/// Flat undirected adjacency (out ∪ in, deduplicated, sorted per row) in
/// CSR form — one contiguous target array instead of n heap vectors, built
/// in parallel. The k-core peel and other undirected kernels scan this.
struct UndirectedCsr {
  std::vector<EdgeIdx> offsets;  ///< size n+1
  std::vector<NodeId> targets;

  NodeId num_nodes() const {
    return static_cast<NodeId>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  uint32_t Degree(NodeId u) const {
    return static_cast<uint32_t>(offsets[u + 1] - offsets[u]);
  }
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {targets.data() + offsets[u], targets.data() + offsets[u + 1]};
  }
};

UndirectedCsr BuildUndirectedCsr(const DiGraph& g);

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_TRAVERSAL_H_

#include "graph/digraph.h"

#include <algorithm>
#include <numeric>

#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace graph {

DiGraph::DiGraph(std::vector<EdgeIdx> out_offsets,
                 std::vector<NodeId> out_targets,
                 std::vector<EdgeIdx> in_offsets,
                 std::vector<NodeId> in_targets)
    : out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_targets_(std::move(in_targets)) {
  EN_CHECK(!out_offsets_.empty());
  EN_CHECK(out_offsets_.size() == in_offsets_.size());
  EN_CHECK(out_offsets_.front() == 0);
  EN_CHECK(in_offsets_.front() == 0);
  EN_CHECK(out_offsets_.back() == out_targets_.size());
  EN_CHECK(in_offsets_.back() == in_targets_.size());
  EN_CHECK(out_targets_.size() == in_targets_.size());
}

bool DiGraph::HasEdge(NodeId u, NodeId v) const {
  const auto nbrs = OutNeighbors(u);
  if (nbrs.size() < kHasEdgeLinearThreshold) {
    for (NodeId w : nbrs) {
      if (w >= v) return w == v;  // rows are sorted ascending
    }
    return false;
  }
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double DiGraph::Density() const {
  const double n = static_cast<double>(num_nodes());
  if (n < 2.0) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0));
}

uint64_t DiGraph::CountIsolated() const {
  uint64_t isolated = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (OutDegree(u) == 0 && InDegree(u) == 0) ++isolated;
  }
  return isolated;
}

DiGraph DiGraph::Transpose() const {
  return DiGraph(in_offsets_, in_targets_, out_offsets_, out_targets_);
}

DegreeRelabeling DiGraph::RelabelByDegree() const {
  ELITENET_SPAN("graph.relabel_by_degree");
  const NodeId n = num_nodes();
  DegreeRelabeling out;
  out.new_to_old.resize(n);
  std::iota(out.new_to_old.begin(), out.new_to_old.end(), NodeId{0});
  std::sort(out.new_to_old.begin(), out.new_to_old.end(),
            [this](NodeId a, NodeId b) {
              const uint64_t da =
                  static_cast<uint64_t>(OutDegree(a)) + InDegree(a);
              const uint64_t db =
                  static_cast<uint64_t>(OutDegree(b)) + InDegree(b);
              if (da != db) return da > db;
              return a < b;
            });
  out.old_to_new.resize(n);
  for (NodeId i = 0; i < n; ++i) out.old_to_new[out.new_to_old[i]] = i;

  std::vector<EdgeIdx> out_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<EdgeIdx> in_offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    out_offsets[i + 1] = out_offsets[i] + OutDegree(out.new_to_old[i]);
    in_offsets[i + 1] = in_offsets[i] + InDegree(out.new_to_old[i]);
  }
  std::vector<NodeId> out_targets(num_edges());
  std::vector<NodeId> in_targets(num_edges());
  // Rows are independent: map each row's targets through the permutation
  // and re-sort it, in parallel (deterministic — no cross-row state).
  util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const NodeId old_u = out.new_to_old[i];
      EdgeIdx w = out_offsets[i];
      for (NodeId v : OutNeighbors(old_u)) {
        out_targets[w++] = out.old_to_new[v];
      }
      std::sort(out_targets.begin() + out_offsets[i],
                out_targets.begin() + w);
      w = in_offsets[i];
      for (NodeId v : InNeighbors(old_u)) {
        in_targets[w++] = out.old_to_new[v];
      }
      std::sort(in_targets.begin() + in_offsets[i], in_targets.begin() + w);
    }
  });
  out.graph = DiGraph(std::move(out_offsets), std::move(out_targets),
                      std::move(in_offsets), std::move(in_targets));
  return out;
}

}  // namespace graph
}  // namespace elitenet

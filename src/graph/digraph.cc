#include "graph/digraph.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/parallel.h"
#include "util/trace.h"

namespace elitenet {
namespace graph {

namespace {

// Backing for the zero-node graph: one offset entry of 0, no targets.
// Static so empty graphs need no allocation and no keepalive.
constexpr EdgeIdx kEmptyOffsets[1] = {0};

}  // namespace

struct DiGraph::VectorStorage {
  std::vector<EdgeIdx> out_offsets;
  std::vector<NodeId> out_targets;
  std::vector<EdgeIdx> in_offsets;
  std::vector<NodeId> in_targets;
};

DiGraph::DiGraph()
    : out_offsets_(kEmptyOffsets, 1), in_offsets_(kEmptyOffsets, 1) {}

DiGraph::DiGraph(std::vector<EdgeIdx> out_offsets,
                 std::vector<NodeId> out_targets,
                 std::vector<EdgeIdx> in_offsets,
                 std::vector<NodeId> in_targets) {
  auto storage = std::make_shared<VectorStorage>();
  storage->out_offsets = std::move(out_offsets);
  storage->out_targets = std::move(out_targets);
  storage->in_offsets = std::move(in_offsets);
  storage->in_targets = std::move(in_targets);
  out_offsets_ = storage->out_offsets;
  out_targets_ = storage->out_targets;
  in_offsets_ = storage->in_offsets;
  in_targets_ = storage->in_targets;
  keepalive_ = std::move(storage);
  EN_CHECK(!out_offsets_.empty());
  EN_CHECK(out_offsets_.size() == in_offsets_.size());
  EN_CHECK(out_offsets_.front() == 0);
  EN_CHECK(in_offsets_.front() == 0);
  EN_CHECK(out_offsets_.back() == out_targets_.size());
  EN_CHECK(in_offsets_.back() == in_targets_.size());
  EN_CHECK(out_targets_.size() == in_targets_.size());
}

DiGraph DiGraph::FromBorrowed(std::span<const EdgeIdx> out_offsets,
                              std::span<const NodeId> out_targets,
                              std::span<const EdgeIdx> in_offsets,
                              std::span<const NodeId> in_targets,
                              std::shared_ptr<const void> keepalive) {
  EN_CHECK(!out_offsets.empty());
  EN_CHECK(out_offsets.size() == in_offsets.size());
  EN_CHECK(out_offsets.front() == 0);
  EN_CHECK(in_offsets.front() == 0);
  EN_CHECK(out_offsets.back() == out_targets.size());
  EN_CHECK(in_offsets.back() == in_targets.size());
  EN_CHECK(out_targets.size() == in_targets.size());
  DiGraph g;
  g.out_offsets_ = out_offsets;
  g.out_targets_ = out_targets;
  g.in_offsets_ = in_offsets;
  g.in_targets_ = in_targets;
  g.keepalive_ = std::move(keepalive);
  g.borrowed_ = true;
  return g;
}

DiGraph::DiGraph(DiGraph&& other) noexcept
    : out_offsets_(other.out_offsets_),
      out_targets_(other.out_targets_),
      in_offsets_(other.in_offsets_),
      in_targets_(other.in_targets_),
      keepalive_(std::move(other.keepalive_)),
      borrowed_(other.borrowed_) {
  // Leave the source in the valid empty state rather than with views into
  // storage it no longer keeps alive.
  other.out_offsets_ = std::span<const EdgeIdx>(kEmptyOffsets, 1);
  other.in_offsets_ = std::span<const EdgeIdx>(kEmptyOffsets, 1);
  other.out_targets_ = {};
  other.in_targets_ = {};
  other.borrowed_ = false;
}

DiGraph& DiGraph::operator=(DiGraph&& other) noexcept {
  if (this != &other) {
    out_offsets_ = other.out_offsets_;
    out_targets_ = other.out_targets_;
    in_offsets_ = other.in_offsets_;
    in_targets_ = other.in_targets_;
    keepalive_ = std::move(other.keepalive_);
    borrowed_ = other.borrowed_;
    other.out_offsets_ = std::span<const EdgeIdx>(kEmptyOffsets, 1);
    other.in_offsets_ = std::span<const EdgeIdx>(kEmptyOffsets, 1);
    other.out_targets_ = {};
    other.in_targets_ = {};
    other.borrowed_ = false;
  }
  return *this;
}

bool DiGraph::operator==(const DiGraph& other) const {
  return std::equal(out_offsets_.begin(), out_offsets_.end(),
                    other.out_offsets_.begin(), other.out_offsets_.end()) &&
         std::equal(out_targets_.begin(), out_targets_.end(),
                    other.out_targets_.begin(), other.out_targets_.end()) &&
         std::equal(in_offsets_.begin(), in_offsets_.end(),
                    other.in_offsets_.begin(), other.in_offsets_.end()) &&
         std::equal(in_targets_.begin(), in_targets_.end(),
                    other.in_targets_.begin(), other.in_targets_.end());
}

bool DiGraph::HasEdge(NodeId u, NodeId v) const {
  const auto nbrs = OutNeighbors(u);
  if (nbrs.size() < kHasEdgeLinearThreshold) {
    for (NodeId w : nbrs) {
      if (w >= v) return w == v;  // rows are sorted ascending
    }
    return false;
  }
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double DiGraph::Density() const {
  const double n = static_cast<double>(num_nodes());
  if (n < 2.0) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0));
}

uint64_t DiGraph::CountIsolated() const {
  uint64_t isolated = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (OutDegree(u) == 0 && InDegree(u) == 0) ++isolated;
  }
  return isolated;
}

DiGraph DiGraph::Transpose() const {
  DiGraph t = FromBorrowed(in_offsets_, in_targets_, out_offsets_,
                           out_targets_, keepalive_);
  t.borrowed_ = borrowed_;  // sharing owned vectors is not a file borrow
  return t;
}

DegreeRelabeling DiGraph::RelabelByDegree() const {
  ELITENET_SPAN("graph.relabel_by_degree");
  const NodeId n = num_nodes();
  DegreeRelabeling out;
  out.new_to_old.resize(n);
  std::iota(out.new_to_old.begin(), out.new_to_old.end(), NodeId{0});
  std::sort(out.new_to_old.begin(), out.new_to_old.end(),
            [this](NodeId a, NodeId b) {
              const uint64_t da =
                  static_cast<uint64_t>(OutDegree(a)) + InDegree(a);
              const uint64_t db =
                  static_cast<uint64_t>(OutDegree(b)) + InDegree(b);
              if (da != db) return da > db;
              return a < b;
            });
  out.old_to_new.resize(n);
  for (NodeId i = 0; i < n; ++i) out.old_to_new[out.new_to_old[i]] = i;

  std::vector<EdgeIdx> out_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<EdgeIdx> in_offsets(static_cast<size_t>(n) + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    out_offsets[i + 1] = out_offsets[i] + OutDegree(out.new_to_old[i]);
    in_offsets[i + 1] = in_offsets[i] + InDegree(out.new_to_old[i]);
  }
  std::vector<NodeId> out_targets(num_edges());
  std::vector<NodeId> in_targets(num_edges());
  // Rows are independent: map each row's targets through the permutation
  // and re-sort it, in parallel (deterministic — no cross-row state).
  util::ParallelFor(0, n, 0, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const NodeId old_u = out.new_to_old[i];
      EdgeIdx w = out_offsets[i];
      for (NodeId v : OutNeighbors(old_u)) {
        out_targets[w++] = out.old_to_new[v];
      }
      std::sort(out_targets.begin() + out_offsets[i],
                out_targets.begin() + w);
      w = in_offsets[i];
      for (NodeId v : InNeighbors(old_u)) {
        in_targets[w++] = out.old_to_new[v];
      }
      std::sort(in_targets.begin() + in_offsets[i], in_targets.begin() + w);
    }
  });
  out.graph = DiGraph(std::move(out_offsets), std::move(out_targets),
                      std::move(in_offsets), std::move(in_targets));
  return out;
}

}  // namespace graph
}  // namespace elitenet

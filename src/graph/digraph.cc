#include "graph/digraph.h"

#include <algorithm>

namespace elitenet {
namespace graph {

DiGraph::DiGraph(std::vector<EdgeIdx> out_offsets,
                 std::vector<NodeId> out_targets,
                 std::vector<EdgeIdx> in_offsets,
                 std::vector<NodeId> in_targets)
    : out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      in_offsets_(std::move(in_offsets)),
      in_targets_(std::move(in_targets)) {
  EN_CHECK(!out_offsets_.empty());
  EN_CHECK(out_offsets_.size() == in_offsets_.size());
  EN_CHECK(out_offsets_.front() == 0);
  EN_CHECK(in_offsets_.front() == 0);
  EN_CHECK(out_offsets_.back() == out_targets_.size());
  EN_CHECK(in_offsets_.back() == in_targets_.size());
  EN_CHECK(out_targets_.size() == in_targets_.size());
}

bool DiGraph::HasEdge(NodeId u, NodeId v) const {
  const auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double DiGraph::Density() const {
  const double n = static_cast<double>(num_nodes());
  if (n < 2.0) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0));
}

uint64_t DiGraph::CountIsolated() const {
  uint64_t isolated = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (OutDegree(u) == 0 && InDegree(u) == 0) ++isolated;
  }
  return isolated;
}

DiGraph DiGraph::Transpose() const {
  return DiGraph(in_offsets_, in_targets_, out_offsets_, out_targets_);
}

}  // namespace graph
}  // namespace elitenet

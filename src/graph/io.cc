#include "graph/io.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "util/mmap_file.h"
#include "util/string_utils.h"

namespace elitenet {
namespace graph {

namespace {

constexpr char kMagicV1[4] = {'E', 'N', 'G', '1'};
constexpr char kMagicV2[4] = {'E', 'N', 'G', '2'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
constexpr uint64_t kAlignment = 64;
constexpr uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

template <typename T>
uint64_t ChecksumSpan(std::span<const T> v, uint64_t seed) {
  return Fnv1a(v.data(), v.size() * sizeof(T), seed);
}

template <typename T>
Status WriteSpan(std::FILE* f, std::span<const T> v) {
  const size_t bytes = v.size() * sizeof(T);
  if (bytes == 0) return Status::OK();
  if (std::fwrite(v.data(), 1, bytes, f) != bytes) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

template <typename T>
Status ReadVector(std::FILE* f, size_t count, std::vector<T>* out) {
  out->resize(count);
  const size_t bytes = count * sizeof(T);
  if (bytes == 0) return Status::OK();
  if (std::fread(out->data(), 1, bytes, f) != bytes) {
    return Status::Corruption("truncated array section");
  }
  return Status::OK();
}

/// The CSR invariants every loader must establish before handing memory
/// to DiGraph: offsets monotone from 0 to m on both sides, all targets
/// in [0, n). Shared by the heap (ENG1) and mapped (ENG2) paths.
Status ValidateCsr(std::span<const EdgeIdx> out_offsets,
                   std::span<const NodeId> out_targets,
                   std::span<const EdgeIdx> in_offsets,
                   std::span<const NodeId> in_targets, uint64_t n,
                   uint64_t m) {
  if (out_offsets.front() != 0 || in_offsets.front() != 0 ||
      out_offsets.back() != m || in_offsets.back() != m) {
    return Status::Corruption("inconsistent CSR offsets");
  }
  for (size_t i = 1; i < out_offsets.size(); ++i) {
    if (out_offsets[i] < out_offsets[i - 1] ||
        in_offsets[i] < in_offsets[i - 1]) {
      return Status::Corruption("non-monotone CSR offsets");
    }
  }
  for (NodeId t : out_targets) {
    if (t >= n) return Status::Corruption("edge target out of range");
  }
  for (NodeId t : in_targets) {
    if (t >= n) return Status::Corruption("edge source out of range");
  }
  return Status::OK();
}

// ENG2 on-disk structures. Both are naturally aligned and padded to their
// exact on-disk size; static_asserts pin the layout the format promises.
struct SnapshotHeaderV2 {
  char magic[4];
  uint32_t version;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint64_t graph_checksum;
  uint32_t section_count;
  uint8_t padding[28];
};
static_assert(sizeof(SnapshotHeaderV2) == 64, "ENG2 header is 64 bytes");

struct SectionEntryV2 {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;
  uint64_t length;
  uint64_t checksum;
};
static_assert(sizeof(SectionEntryV2) == 32, "ENG2 section entry is 32 bytes");

constexpr uint32_t kNumSections = 4;

uint64_t AlignUp(uint64_t v) { return (v + kAlignment - 1) & ~(kAlignment - 1); }

Status CheckLittleEndianHost() {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotSupported(
        "ENG2 snapshots are little-endian; this host is not");
  }
  return Status::OK();
}

}  // namespace

uint64_t GraphChecksum(const DiGraph& g) {
  uint64_t h = kFnvBasis;
  h = ChecksumSpan(g.out_offsets(), h);
  h = ChecksumSpan(g.out_targets(), h);
  h = ChecksumSpan(g.in_offsets(), h);
  h = ChecksumSpan(g.in_targets(), h);
  return h;
}

Status WriteEdgeListText(const DiGraph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for writing: " + path);
  std::fprintf(f.get(), "# elitenet edge list: %u nodes, %" PRIu64 " edges\n",
               g.num_nodes(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (std::fprintf(f.get(), "%u %u\n", u, v) < 0) {
        return Status::IoError("write failed: " + path);
      }
    }
  }
  return Status::OK();
}

Result<DiGraph> ReadEdgeListText(const std::string& path, NodeId num_nodes) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open for reading: " + path);

  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId max_id = 0;
  bool any_edge = false;
  char line[256];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    std::string_view sv = util::StripAsciiWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    const auto toks = util::SplitWhitespace(sv);
    if (toks.size() != 2) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 'src dst'");
    }
    uint64_t u64, v64;
    if (!util::ParseUint64(toks[0], &u64) ||
        !util::ParseUint64(toks[1], &v64) || u64 > UINT32_MAX ||
        v64 > UINT32_MAX) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad node id");
    }
    const NodeId u = static_cast<NodeId>(u64);
    const NodeId v = static_cast<NodeId>(v64);
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
    any_edge = true;
  }

  const NodeId n = num_nodes > 0 ? num_nodes : (any_edge ? max_id + 1 : 0);
  GraphBuilder builder(n);
  builder.Reserve(edges.size());
  EN_RETURN_IF_ERROR(builder.AddEdges(edges));
  return builder.Build();
}

Status SaveBinary(const DiGraph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for writing: " + path);

  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  const uint64_t checksum = GraphChecksum(g);
  const uint32_t reserved = 0;

  if (std::fwrite(kMagicV1, 1, 4, f.get()) != 4 ||
      std::fwrite(&kVersionV1, sizeof(kVersionV1), 1, f.get()) != 1 ||
      std::fwrite(&reserved, sizeof(reserved), 1, f.get()) != 1 ||
      std::fwrite(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fwrite(&m, sizeof(m), 1, f.get()) != 1 ||
      std::fwrite(&checksum, sizeof(checksum), 1, f.get()) != 1) {
    return Status::IoError("header write failed");
  }
  EN_RETURN_IF_ERROR(WriteSpan(f.get(), g.out_offsets()));
  EN_RETURN_IF_ERROR(WriteSpan(f.get(), g.out_targets()));
  EN_RETURN_IF_ERROR(WriteSpan(f.get(), g.in_offsets()));
  EN_RETURN_IF_ERROR(WriteSpan(f.get(), g.in_targets()));
  return Status::OK();
}

Result<DiGraph> LoadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for reading: " + path);

  char magic[4];
  uint32_t version = 0, reserved = 0;
  uint64_t n = 0, m = 0, checksum = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fread(&reserved, sizeof(reserved), 1, f.get()) != 1 ||
      std::fread(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fread(&m, sizeof(m), 1, f.get()) != 1 ||
      std::fread(&checksum, sizeof(checksum), 1, f.get()) != 1) {
    return Status::Corruption("truncated header: " + path);
  }
  if (std::memcmp(magic, kMagicV1, 4) != 0) {
    return Status::Corruption("bad magic: " + path);
  }
  if (version != kVersionV1) {
    return Status::NotSupported("unsupported snapshot version " +
                                std::to_string(version));
  }
  if (n > UINT32_MAX) return Status::Corruption("node count overflow");

  // Validate the claimed sizes against the actual file length before any
  // allocation: a corrupted count field must not trigger a huge resize.
  constexpr uint64_t kHeaderBytes = 4 + 4 + 4 + 8 + 8 + 8;
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("seek failed");
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) return Status::IoError("tell failed");
  const uint64_t expected =
      kHeaderBytes + 2 * (n + 1) * sizeof(EdgeIdx) + 2 * m * sizeof(NodeId);
  if (n + 1 < n ||  // overflow guard
      static_cast<uint64_t>(file_size) != expected) {
    return Status::Corruption("file size disagrees with header counts");
  }
  if (std::fseek(f.get(), static_cast<long>(kHeaderBytes), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }

  std::vector<EdgeIdx> out_offsets, in_offsets;
  std::vector<NodeId> out_targets, in_targets;
  EN_RETURN_IF_ERROR(ReadVector(f.get(), n + 1, &out_offsets));
  EN_RETURN_IF_ERROR(ReadVector(f.get(), m, &out_targets));
  EN_RETURN_IF_ERROR(ReadVector(f.get(), n + 1, &in_offsets));
  EN_RETURN_IF_ERROR(ReadVector(f.get(), m, &in_targets));

  EN_RETURN_IF_ERROR(ValidateCsr(out_offsets, out_targets, in_offsets,
                                 in_targets, n, m));

  DiGraph g(std::move(out_offsets), std::move(out_targets),
            std::move(in_offsets), std::move(in_targets));
  if (GraphChecksum(g) != checksum) {
    return Status::Corruption("checksum mismatch: " + path);
  }
  return g;
}

Status SaveBinaryV2(const DiGraph& g, const std::string& path) {
  EN_RETURN_IF_ERROR(CheckLittleEndianHost());
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for writing: " + path);

  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();

  SnapshotHeaderV2 header = {};
  std::memcpy(header.magic, kMagicV2, 4);
  header.version = kVersionV2;
  header.num_nodes = n;
  header.num_edges = m;
  header.graph_checksum = GraphChecksum(g);
  header.section_count = kNumSections;

  struct SectionData {
    const void* data;
    uint64_t length;
  };
  const SectionData sections[kNumSections] = {
      {g.out_offsets().data(), (n + 1) * sizeof(EdgeIdx)},
      {g.out_targets().data(), m * sizeof(NodeId)},
      {g.in_offsets().data(), (n + 1) * sizeof(EdgeIdx)},
      {g.in_targets().data(), m * sizeof(NodeId)},
  };

  SectionEntryV2 table[kNumSections] = {};
  uint64_t offset =
      AlignUp(sizeof(SnapshotHeaderV2) + kNumSections * sizeof(SectionEntryV2));
  for (uint32_t i = 0; i < kNumSections; ++i) {
    table[i].id = i;
    table[i].offset = offset;
    table[i].length = sections[i].length;
    table[i].checksum =
        Fnv1a(sections[i].data, sections[i].length, kFnvBasis);
    offset = AlignUp(offset + sections[i].length);
  }

  if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1 ||
      std::fwrite(table, sizeof(SectionEntryV2), kNumSections, f.get()) !=
          kNumSections) {
    return Status::IoError("header write failed: " + path);
  }
  uint64_t written = sizeof(header) + kNumSections * sizeof(SectionEntryV2);
  const char zeros[kAlignment] = {};
  for (uint32_t i = 0; i < kNumSections; ++i) {
    const uint64_t pad = table[i].offset - written;
    if (pad > 0 && std::fwrite(zeros, 1, pad, f.get()) != pad) {
      return Status::IoError("padding write failed: " + path);
    }
    if (sections[i].length > 0 &&
        std::fwrite(sections[i].data, 1, sections[i].length, f.get()) !=
            sections[i].length) {
      return Status::IoError("section write failed: " + path);
    }
    written = table[i].offset + sections[i].length;
  }
  if (std::fflush(f.get()) != 0) {
    return Status::IoError("flush failed: " + path);
  }
  return Status::OK();
}

Result<DiGraph> MapBinary(const std::string& path) {
  EN_RETURN_IF_ERROR(CheckLittleEndianHost());
  EN_ASSIGN_OR_RETURN(util::MmapFile mapped, util::MmapFile::Open(path));
  const uint8_t* base = mapped.data();
  const uint64_t size = mapped.size();

  if (size < sizeof(SnapshotHeaderV2)) {
    return Status::Corruption("truncated header: " + path);
  }
  SnapshotHeaderV2 header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagicV2, 4) != 0) {
    return Status::Corruption("bad magic: " + path);
  }
  if (header.version != kVersionV2) {
    return Status::NotSupported("unsupported ENG2 snapshot version " +
                                std::to_string(header.version));
  }
  const uint64_t n = header.num_nodes;
  const uint64_t m = header.num_edges;
  if (n > UINT32_MAX) return Status::Corruption("node count overflow");
  if (header.section_count != kNumSections) {
    return Status::Corruption("unexpected section count");
  }
  const uint64_t table_end =
      sizeof(SnapshotHeaderV2) + kNumSections * sizeof(SectionEntryV2);
  if (size < table_end) {
    return Status::Corruption("truncated section table: " + path);
  }
  SectionEntryV2 table[kNumSections];
  std::memcpy(table, base + sizeof(SnapshotHeaderV2), sizeof(table));

  const uint64_t expected_lengths[kNumSections] = {
      (n + 1) * sizeof(EdgeIdx), m * sizeof(NodeId),
      (n + 1) * sizeof(EdgeIdx), m * sizeof(NodeId)};
  for (uint32_t i = 0; i < kNumSections; ++i) {
    const SectionEntryV2& s = table[i];
    if (s.id != i) return Status::Corruption("section table out of order");
    if (s.offset % kAlignment != 0) {
      return Status::Corruption("misaligned section offset");
    }
    if (s.length > size || s.offset > size - s.length) {
      return Status::Corruption("section exceeds file: " + path);
    }
    if (s.length != expected_lengths[i]) {
      return Status::Corruption("section length disagrees with node/edge "
                                "counts: " + path);
    }
    if (Fnv1a(base + s.offset, s.length, kFnvBasis) != s.checksum) {
      return Status::Corruption("section checksum mismatch: " + path);
    }
  }

  const std::span<const EdgeIdx> out_offsets(
      reinterpret_cast<const EdgeIdx*>(base + table[0].offset), n + 1);
  const std::span<const NodeId> out_targets(
      reinterpret_cast<const NodeId*>(base + table[1].offset), m);
  const std::span<const EdgeIdx> in_offsets(
      reinterpret_cast<const EdgeIdx*>(base + table[2].offset), n + 1);
  const std::span<const NodeId> in_targets(
      reinterpret_cast<const NodeId*>(base + table[3].offset), m);

  // Whole-graph checksum ties the four sections together (a swapped pair
  // of same-length sections would fool per-section sums alone) and must
  // match what GraphChecksum computes on any other load path — it is the
  // warm-index invalidation key.
  uint64_t h = kFnvBasis;
  h = ChecksumSpan(out_offsets, h);
  h = ChecksumSpan(out_targets, h);
  h = ChecksumSpan(in_offsets, h);
  h = ChecksumSpan(in_targets, h);
  if (h != header.graph_checksum) {
    return Status::Corruption("graph checksum mismatch: " + path);
  }

  EN_RETURN_IF_ERROR(ValidateCsr(out_offsets, out_targets, in_offsets,
                                 in_targets, n, m));

  auto keepalive = std::make_shared<util::MmapFile>(std::move(mapped));
  return DiGraph::FromBorrowed(out_offsets, out_targets, in_offsets,
                               in_targets, std::move(keepalive));
}

namespace {

/// Buffered section writer: batches values, folds every flushed byte into
/// both the per-section FNV and the whole-graph FNV chain, and tracks the
/// byte count. One instance per section, in section order, reproduces
/// exactly the checksums SaveBinaryV2 computes from resident arrays.
template <typename T>
class SectionWriter {
 public:
  SectionWriter(std::FILE* f, uint64_t* graph_hash)
      : file_(f), graph_hash_(graph_hash), section_hash_(kFnvBasis) {
    buffer_.reserve(kBufferValues);
  }

  Status Append(T value) {
    buffer_.push_back(value);
    if (buffer_.size() >= kBufferValues) return Flush();
    return Status::OK();
  }

  Status Flush() {
    const size_t bytes = buffer_.size() * sizeof(T);
    if (bytes == 0) return Status::OK();
    section_hash_ = Fnv1a(buffer_.data(), bytes, section_hash_);
    *graph_hash_ = Fnv1a(buffer_.data(), bytes, *graph_hash_);
    if (std::fwrite(buffer_.data(), 1, bytes, file_) != bytes) {
      return Status::IoError("section write failed");
    }
    bytes_written_ += bytes;
    buffer_.clear();
    return Status::OK();
  }

  uint64_t section_checksum() const { return section_hash_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  static constexpr size_t kBufferValues = 1 << 20;

  std::FILE* file_;
  uint64_t* graph_hash_;
  uint64_t section_hash_;
  uint64_t bytes_written_ = 0;
  std::vector<T> buffer_;
};

Status WritePadding(std::FILE* f, uint64_t from, uint64_t to) {
  const char zeros[kAlignment] = {};
  while (from < to) {
    const uint64_t chunk = std::min<uint64_t>(to - from, kAlignment);
    if (std::fwrite(zeros, 1, chunk, f) != chunk) {
      return Status::IoError("padding write failed");
    }
    from += chunk;
  }
  return Status::OK();
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string BaseOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Result<StreamWriteStats> WriteStreamedV2(util::ExtSorter* forward,
                                         NodeId num_nodes,
                                         const std::string& path,
                                         const StreamWriteOptions& options) {
  EN_RETURN_IF_ERROR(CheckLittleEndianHost());
  EN_RETURN_IF_ERROR(forward->Finish());

  const uint64_t n = num_nodes;
  StreamWriteStats stats;
  stats.num_nodes = n;
  stats.input_records = forward->total_records();
  stats.forward_spill_runs = forward->spill_run_count();

  util::ExtSortOptions rev_options;
  rev_options.budget_bytes = options.sort_budget_bytes;
  rev_options.temp_dir =
      options.temp_dir.empty() ? DirOf(path) : options.temp_dir;
  rev_options.temp_prefix = BaseOf(path) + ".rev";
  util::ExtSorter reverse(rev_options);

  // Pass 1 (forward, counting): per-source degrees -> out_offsets, with
  // coalescing and self-loop drops exactly as GraphBuilder does them.
  // Unique edges simultaneously feed the (dst, src)-keyed reverse sorter,
  // so the in-CSR passes below see a duplicate-free stream.
  std::vector<EdgeIdx> offsets(n + 1, 0);
  {
    EN_ASSIGN_OR_RETURN(util::ExtSorter::Stream s, forward->Scan());
    uint64_t record = 0;
    bool any = false;
    uint64_t prev = 0;
    while (s.Next(&record)) {
      const NodeId src = util::PackedSrc(record);
      const NodeId dst = util::PackedDst(record);
      if (src >= n || dst >= n) {
        return Status::InvalidArgument("edge endpoint exceeds node count");
      }
      if (src == dst) {
        ++stats.dropped_self_loops;
        continue;
      }
      if (any && record == prev) {
        ++stats.dropped_duplicates;
        continue;
      }
      any = true;
      prev = record;
      ++offsets[src + 1];
      ++stats.num_edges;
      EN_RETURN_IF_ERROR(reverse.Add(util::PackEdgeReversed(src, dst)));
    }
    EN_RETURN_IF_ERROR(s.status());
  }
  EN_RETURN_IF_ERROR(reverse.Finish());
  stats.reverse_spill_runs = reverse.spill_run_count();
  for (uint64_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  const uint64_t m = stats.num_edges;

  // Section layout is fully determined by (n, m); checksums arrive as the
  // payload streams through, and the header + table are back-patched at
  // the end.
  SectionEntryV2 table[kNumSections] = {};
  const uint64_t expected_lengths[kNumSections] = {
      (n + 1) * sizeof(EdgeIdx), m * sizeof(NodeId),
      (n + 1) * sizeof(EdgeIdx), m * sizeof(NodeId)};
  uint64_t offset =
      AlignUp(sizeof(SnapshotHeaderV2) + kNumSections * sizeof(SectionEntryV2));
  for (uint32_t i = 0; i < kNumSections; ++i) {
    table[i].id = i;
    table[i].offset = offset;
    table[i].length = expected_lengths[i];
    offset = AlignUp(offset + expected_lengths[i]);
  }

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for writing: " + path);
  uint64_t graph_hash = kFnvBasis;
  uint64_t written = 0;

  // Section 0: out_offsets, from the resident O(n) array.
  EN_RETURN_IF_ERROR(WritePadding(f.get(), written, table[0].offset));
  {
    SectionWriter<EdgeIdx> w(f.get(), &graph_hash);
    for (EdgeIdx v : offsets) EN_RETURN_IF_ERROR(w.Append(v));
    EN_RETURN_IF_ERROR(w.Flush());
    table[0].checksum = w.section_checksum();
    written = table[0].offset + w.bytes_written();
  }

  // Section 1: out_targets via a second forward merge. Records arrive in
  // (src, dst) order, which *is* CSR placement order — dsts stream
  // straight to disk with no cursor array.
  EN_RETURN_IF_ERROR(WritePadding(f.get(), written, table[1].offset));
  {
    EN_ASSIGN_OR_RETURN(util::ExtSorter::Stream s, forward->Scan());
    SectionWriter<NodeId> w(f.get(), &graph_hash);
    uint64_t record = 0;
    bool any = false;
    uint64_t prev = 0;
    while (s.Next(&record)) {
      const NodeId src = util::PackedSrc(record);
      const NodeId dst = util::PackedDst(record);
      if (src == dst) continue;
      if (any && record == prev) continue;
      any = true;
      prev = record;
      EN_RETURN_IF_ERROR(w.Append(dst));
    }
    EN_RETURN_IF_ERROR(s.status());
    EN_RETURN_IF_ERROR(w.Flush());
    table[1].checksum = w.section_checksum();
    written = table[1].offset + w.bytes_written();
  }

  // Section 2: in_offsets by a counting pass over the reverse stream
  // (already unique), reusing the offsets array.
  std::fill(offsets.begin(), offsets.end(), 0);
  {
    EN_ASSIGN_OR_RETURN(util::ExtSorter::Stream s, reverse.Scan());
    uint64_t record = 0;
    while (s.Next(&record)) ++offsets[util::PackedSrc(record) + 1];
    EN_RETURN_IF_ERROR(s.status());
  }
  for (uint64_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  EN_RETURN_IF_ERROR(WritePadding(f.get(), written, table[2].offset));
  {
    SectionWriter<EdgeIdx> w(f.get(), &graph_hash);
    for (EdgeIdx v : offsets) EN_RETURN_IF_ERROR(w.Append(v));
    EN_RETURN_IF_ERROR(w.Flush());
    table[2].checksum = w.section_checksum();
    written = table[2].offset + w.bytes_written();
  }

  // Section 3: in_targets (sources) via the second reverse merge.
  EN_RETURN_IF_ERROR(WritePadding(f.get(), written, table[3].offset));
  {
    EN_ASSIGN_OR_RETURN(util::ExtSorter::Stream s, reverse.Scan());
    SectionWriter<NodeId> w(f.get(), &graph_hash);
    uint64_t record = 0;
    while (s.Next(&record)) {
      EN_RETURN_IF_ERROR(w.Append(util::PackedDst(record)));
    }
    EN_RETURN_IF_ERROR(s.status());
    EN_RETURN_IF_ERROR(w.Flush());
    table[3].checksum = w.section_checksum();
  }

  // Back-patch the header and section table now that the checksums exist.
  SnapshotHeaderV2 header = {};
  std::memcpy(header.magic, kMagicV2, 4);
  header.version = kVersionV2;
  header.num_nodes = n;
  header.num_edges = m;
  header.graph_checksum = graph_hash;
  header.section_count = kNumSections;
  stats.graph_checksum = graph_hash;

  if (std::fseek(f.get(), 0, SEEK_SET) != 0) {
    return Status::IoError("seek failed: " + path);
  }
  if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1 ||
      std::fwrite(table, sizeof(SectionEntryV2), kNumSections, f.get()) !=
          kNumSections) {
    return Status::IoError("header write failed: " + path);
  }
  if (std::fflush(f.get()) != 0) {
    return Status::IoError("flush failed: " + path);
  }
  return stats;
}

Result<StreamWriteStats> SaveStreamedV2(const DiGraph& g,
                                        const std::string& path,
                                        const StreamWriteOptions& options) {
  util::ExtSortOptions fwd_options;
  fwd_options.budget_bytes = options.sort_budget_bytes;
  fwd_options.temp_dir =
      options.temp_dir.empty() ? DirOf(path) : options.temp_dir;
  fwd_options.temp_prefix = BaseOf(path) + ".fwd";
  util::ExtSorter forward(fwd_options);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      EN_RETURN_IF_ERROR(forward.Add(util::PackEdge(u, v)));
    }
  }
  return WriteStreamedV2(&forward, g.num_nodes(), path, options);
}

Result<SnapshotFormat> SniffSnapshot(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for reading: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4) {
    return SnapshotFormat::kNotSnapshot;
  }
  if (std::memcmp(magic, kMagicV1, 4) == 0) return SnapshotFormat::kV1;
  if (std::memcmp(magic, kMagicV2, 4) == 0) return SnapshotFormat::kV2;
  return SnapshotFormat::kNotSnapshot;
}

Result<DiGraph> LoadSnapshot(const std::string& path) {
  EN_ASSIGN_OR_RETURN(const SnapshotFormat format, SniffSnapshot(path));
  switch (format) {
    case SnapshotFormat::kV1:
      return LoadBinary(path);
    case SnapshotFormat::kV2:
      return MapBinary(path);
    case SnapshotFormat::kNotSnapshot:
      break;
  }
  return Status::Corruption("not an elitenet snapshot (no ENG1/ENG2 magic): " +
                            path);
}

}  // namespace graph
}  // namespace elitenet

#include "graph/io.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/builder.h"
#include "util/string_utils.h"

namespace elitenet {
namespace graph {

namespace {

constexpr char kMagic[4] = {'E', 'N', 'G', '1'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

template <typename T>
uint64_t ChecksumVector(const std::vector<T>& v, uint64_t seed) {
  return Fnv1a(v.data(), v.size() * sizeof(T), seed);
}

uint64_t GraphChecksum(const DiGraph& g) {
  uint64_t h = 0xCBF29CE484222325ULL;
  h = ChecksumVector(g.out_offsets(), h);
  h = ChecksumVector(g.out_targets(), h);
  h = ChecksumVector(g.in_offsets(), h);
  h = ChecksumVector(g.in_targets(), h);
  return h;
}

template <typename T>
Status WriteVector(std::FILE* f, const std::vector<T>& v) {
  const size_t bytes = v.size() * sizeof(T);
  if (bytes == 0) return Status::OK();
  if (std::fwrite(v.data(), 1, bytes, f) != bytes) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

template <typename T>
Status ReadVector(std::FILE* f, size_t count, std::vector<T>* out) {
  out->resize(count);
  const size_t bytes = count * sizeof(T);
  if (bytes == 0) return Status::OK();
  if (std::fread(out->data(), 1, bytes, f) != bytes) {
    return Status::Corruption("truncated array section");
  }
  return Status::OK();
}

}  // namespace

Status WriteEdgeListText(const DiGraph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for writing: " + path);
  std::fprintf(f.get(), "# elitenet edge list: %u nodes, %" PRIu64 " edges\n",
               g.num_nodes(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (std::fprintf(f.get(), "%u %u\n", u, v) < 0) {
        return Status::IoError("write failed: " + path);
      }
    }
  }
  return Status::OK();
}

Result<DiGraph> ReadEdgeListText(const std::string& path, NodeId num_nodes) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open for reading: " + path);

  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId max_id = 0;
  bool any_edge = false;
  char line[256];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    std::string_view sv = util::StripAsciiWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    const auto toks = util::SplitWhitespace(sv);
    if (toks.size() != 2) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 'src dst'");
    }
    uint64_t u64, v64;
    if (!util::ParseUint64(toks[0], &u64) ||
        !util::ParseUint64(toks[1], &v64) || u64 > UINT32_MAX ||
        v64 > UINT32_MAX) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad node id");
    }
    const NodeId u = static_cast<NodeId>(u64);
    const NodeId v = static_cast<NodeId>(v64);
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
    any_edge = true;
  }

  const NodeId n = num_nodes > 0 ? num_nodes : (any_edge ? max_id + 1 : 0);
  GraphBuilder builder(n);
  builder.Reserve(edges.size());
  EN_RETURN_IF_ERROR(builder.AddEdges(edges));
  return builder.Build();
}

Status SaveBinary(const DiGraph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for writing: " + path);

  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  const uint64_t checksum = GraphChecksum(g);
  const uint32_t reserved = 0;

  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1 ||
      std::fwrite(&reserved, sizeof(reserved), 1, f.get()) != 1 ||
      std::fwrite(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fwrite(&m, sizeof(m), 1, f.get()) != 1 ||
      std::fwrite(&checksum, sizeof(checksum), 1, f.get()) != 1) {
    return Status::IoError("header write failed");
  }
  EN_RETURN_IF_ERROR(WriteVector(f.get(), g.out_offsets()));
  EN_RETURN_IF_ERROR(WriteVector(f.get(), g.out_targets()));
  EN_RETURN_IF_ERROR(WriteVector(f.get(), g.in_offsets()));
  EN_RETURN_IF_ERROR(WriteVector(f.get(), g.in_targets()));
  return Status::OK();
}

Result<DiGraph> LoadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for reading: " + path);

  char magic[4];
  uint32_t version = 0, reserved = 0;
  uint64_t n = 0, m = 0, checksum = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fread(&reserved, sizeof(reserved), 1, f.get()) != 1 ||
      std::fread(&n, sizeof(n), 1, f.get()) != 1 ||
      std::fread(&m, sizeof(m), 1, f.get()) != 1 ||
      std::fread(&checksum, sizeof(checksum), 1, f.get()) != 1) {
    return Status::Corruption("truncated header: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic: " + path);
  }
  if (version != kVersion) {
    return Status::NotSupported("unsupported snapshot version " +
                                std::to_string(version));
  }
  if (n > UINT32_MAX) return Status::Corruption("node count overflow");

  // Validate the claimed sizes against the actual file length before any
  // allocation: a corrupted count field must not trigger a huge resize.
  constexpr uint64_t kHeaderBytes = 4 + 4 + 4 + 8 + 8 + 8;
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("seek failed");
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) return Status::IoError("tell failed");
  const uint64_t expected =
      kHeaderBytes + 2 * (n + 1) * sizeof(EdgeIdx) + 2 * m * sizeof(NodeId);
  if (n + 1 < n ||  // overflow guard
      static_cast<uint64_t>(file_size) != expected) {
    return Status::Corruption("file size disagrees with header counts");
  }
  if (std::fseek(f.get(), static_cast<long>(kHeaderBytes), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }

  std::vector<EdgeIdx> out_offsets, in_offsets;
  std::vector<NodeId> out_targets, in_targets;
  EN_RETURN_IF_ERROR(ReadVector(f.get(), n + 1, &out_offsets));
  EN_RETURN_IF_ERROR(ReadVector(f.get(), m, &out_targets));
  EN_RETURN_IF_ERROR(ReadVector(f.get(), n + 1, &in_offsets));
  EN_RETURN_IF_ERROR(ReadVector(f.get(), m, &in_targets));

  // Structural validation before trusting offsets.
  if (out_offsets.front() != 0 || in_offsets.front() != 0 ||
      out_offsets.back() != m || in_offsets.back() != m) {
    return Status::Corruption("inconsistent CSR offsets");
  }
  for (size_t i = 1; i < out_offsets.size(); ++i) {
    if (out_offsets[i] < out_offsets[i - 1] ||
        in_offsets[i] < in_offsets[i - 1]) {
      return Status::Corruption("non-monotone CSR offsets");
    }
  }
  for (NodeId t : out_targets) {
    if (t >= n) return Status::Corruption("edge target out of range");
  }
  for (NodeId t : in_targets) {
    if (t >= n) return Status::Corruption("edge source out of range");
  }

  DiGraph g(std::move(out_offsets), std::move(out_targets),
            std::move(in_offsets), std::move(in_targets));
  if (GraphChecksum(g) != checksum) {
    return Status::Corruption("checksum mismatch: " + path);
  }
  return g;
}

}  // namespace graph
}  // namespace elitenet

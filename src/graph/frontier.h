// Frontier data structures for the traversal kernels (graph/traversal.h):
// a word-addressed bitmap over node ids and an epoch-stamped ScratchArena
// that owns every per-traversal buffer (visited stamps, distances, parents,
// sparse frontier queues, dense frontier bitmaps).
//
// The arena exists so hot loops stop reallocating O(n) std::vector scratch
// per BFS source: buffers are sized once per graph and recycled across
// traversals. "Cleared" state is represented by an epoch counter instead of
// a memset — BeginEpoch bumps the counter, instantly invalidating every
// visited/dist/parent entry stamped in earlier epochs (a full wipe happens
// only on 32-bit epoch wraparound, once every ~4 billion traversals).
//
// Arenas are strictly single-threaded: parallel sweeps give each worker
// block its own arena (see analysis/distance.cc), which is also what keeps
// the bottom-up bitmap writes TSan-clean — no bitmap is ever shared.

#ifndef ELITENET_GRAPH_FRONTIER_H_
#define ELITENET_GRAPH_FRONTIER_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/check.h"

namespace elitenet {
namespace graph {

/// Fixed-capacity bitset over node ids, stored as 64-bit words so dense
/// frontier sweeps can skip 64 unset nodes per load.
class NodeBitmap {
 public:
  NodeBitmap() = default;
  explicit NodeBitmap(size_t num_bits) { Resize(num_bits); }

  /// Resizes to `num_bits` bits, clearing everything.
  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  size_t num_bits() const { return num_bits_; }

  void ClearAll() { std::fill(words_.begin(), words_.end(), uint64_t{0}); }

  bool Test(NodeId v) const {
    return (words_[v >> 6] >> (v & 63)) & uint64_t{1};
  }
  void Set(NodeId v) { words_[v >> 6] |= uint64_t{1} << (v & 63); }
  void Clear(NodeId v) { words_[v >> 6] &= ~(uint64_t{1} << (v & 63)); }

  /// Raw word access for word-at-a-time iteration over set bits.
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Reusable single-threaded scratch for graph traversals. All state a BFS
/// needs — visited marks, distances, parents, sparse queues, dense bitmaps
/// — lives here and survives across sources, so the per-source setup cost
/// is one epoch bump instead of several O(n) allocations.
///
/// Lifetime rules:
///   * Reset(n) sizes the arena for an n-node graph (full wipe).
///   * BeginEpoch() starts a new traversal; every Visited/Distance/Parent
///     fact recorded before it reads as "unvisited" afterwards.
///   * Results of the *latest* traversal stay readable until the next
///     BeginEpoch (or Reset), which is how callers consume BFS output
///     without materializing a dist vector.
class ScratchArena {
 public:
  ScratchArena() = default;
  explicit ScratchArena(NodeId num_nodes) { Reset(num_nodes); }

  /// Sizes every buffer for `num_nodes` and wipes all recorded state.
  /// Stamps hold 0 ("never visited") and the epoch starts at 1, so every
  /// node reads unvisited even before the first BeginEpoch.
  void Reset(NodeId num_nodes) {
    num_nodes_ = num_nodes;
    epoch_ = 1;
    stamp_.assign(num_nodes, 0);
    dist_.resize(num_nodes);
    parent_.resize(num_nodes);
    frontier_.clear();
    next_.clear();
    frontier_bits_.Resize(num_nodes);
    next_bits_.Resize(num_nodes);
    unvisited_bits_.Resize(num_nodes);
  }

  NodeId num_nodes() const { return num_nodes_; }

  /// Starts a new traversal: O(1) except on 32-bit epoch wraparound,
  /// where the stamps are rewiped.
  void BeginEpoch() {
    if (epoch_ == UINT32_MAX) {
      std::fill(stamp_.begin(), stamp_.end(), uint32_t{0});
      epoch_ = 0;
    }
    ++epoch_;
  }

  /// Number of BeginEpoch calls since the last wipe (test hook).
  uint32_t epoch() const { return epoch_; }

  bool Visited(NodeId v) const { return stamp_[v] == epoch_; }

  /// Marks `v` visited in the current epoch at `dist` via `parent`.
  void Visit(NodeId v, uint32_t dist, NodeId parent) {
    stamp_[v] = epoch_;
    dist_[v] = dist;
    parent_[v] = parent;
  }

  /// Distance of a visited node (unchecked: caller guarantees Visited).
  uint32_t Distance(NodeId v) const { return dist_[v]; }
  uint32_t DistanceOr(NodeId v, uint32_t fallback) const {
    return Visited(v) ? dist_[v] : fallback;
  }

  /// Parent of a visited node; the source's parent is itself. Only
  /// meaningful when the traversal ran with compute_parents.
  NodeId Parent(NodeId v) const { return parent_[v]; }
  NodeId ParentOr(NodeId v, NodeId fallback) const {
    return Visited(v) ? parent_[v] : fallback;
  }
  void SetParent(NodeId v, NodeId p) { parent_[v] = p; }

  /// Sparse frontier queues (current level / next level).
  std::vector<NodeId>& frontier() { return frontier_; }
  std::vector<NodeId>& next() { return next_; }

  /// Dense frontier bitmaps for bottom-up levels, plus the bitmap of
  /// still-unvisited nodes the bottom-up sweep iterates.
  NodeBitmap& frontier_bits() { return frontier_bits_; }
  NodeBitmap& next_bits() { return next_bits_; }
  NodeBitmap& unvisited_bits() { return unvisited_bits_; }

 private:
  NodeId num_nodes_ = 0;
  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> dist_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
  NodeBitmap frontier_bits_;
  NodeBitmap next_bits_;
  NodeBitmap unvisited_bits_;
};

/// Number of set bits.
uint64_t CountSetBits(const NodeBitmap& bits);

/// Appends every set bit's index to `out` in ascending order (clears `out`
/// first).
void ExtractSetBits(const NodeBitmap& bits, std::vector<NodeId>* out);

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_FRONTIER_H_

// Graph persistence.
//
// Three formats:
//  * Text edge list — one "src dst" pair per line, '#' comments, the format
//    SNAP datasets ship in. Interoperable but slow.
//  * ENG1 binary CSR snapshot (legacy, read/write) — versioned header with
//    magic + whole-graph checksum, then the four CSR arrays verbatim.
//    Loads at memcpy speed into heap vectors.
//  * ENG2 zero-copy snapshot — a 64-byte-aligned, little-endian, sectioned
//    file (magic, section table, per-section FNV checksums) whose CSR
//    arrays are consumed *in place*: MapBinary mmaps the file read-only
//    (util/mmap_file.h) and returns a DiGraph whose spans point straight
//    into the page cache, so cold start pays validation, not
//    deserialization. The serving path and every bench prefer ENG2.

#ifndef ELITENET_GRAPH_IO_H_
#define ELITENET_GRAPH_IO_H_

#include <string>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace graph {

/// Writes "u v" lines. Deterministic (ascending (u, v)) so output diffs.
Status WriteEdgeListText(const DiGraph& g, const std::string& path);

/// Reads a text edge list. Node count is max id + 1 unless `num_nodes`
/// is positive, in which case ids must stay below it (trailing isolated
/// nodes are representable that way).
Result<DiGraph> ReadEdgeListText(const std::string& path,
                                 NodeId num_nodes = 0);

/// 64-bit FNV-1a chained over the four CSR arrays — the identity of a
/// graph's exact byte content. Stored in both snapshot headers and used
/// as the invalidation key for persisted warm indexes
/// (serve/warm_index_cache.h).
uint64_t GraphChecksum(const DiGraph& g);

/// ENG1 binary snapshot (legacy, kept read/write for compatibility).
/// Layout (little-endian):
///   magic "ENG1" | u32 version | u32 reserved | u64 num_nodes |
///   u64 num_edges | u64 checksum | out_offsets | out_targets |
///   in_offsets | in_targets
/// The checksum is GraphChecksum; Load verifies it and returns Corruption
/// on mismatch.
Status SaveBinary(const DiGraph& g, const std::string& path);
Result<DiGraph> LoadBinary(const std::string& path);

/// ENG2 sectioned snapshot. Layout (little-endian, every section start
/// 64-byte aligned):
///   header (64 B):  magic "ENG2" | u32 version | u64 num_nodes |
///                   u64 num_edges | u64 graph_checksum |
///                   u32 section_count | padding
///   section table:  section_count x 32 B entries
///                   { u32 id | u32 reserved | u64 offset | u64 length |
///                     u64 fnv1a_checksum }
///   payload:        out_offsets | out_targets | in_offsets | in_targets
/// Section ids are 0..3 in that order. Alignment means a page-aligned
/// mapping yields correctly aligned u64/u32 array pointers.
Status SaveBinaryV2(const DiGraph& g, const std::string& path);

/// Maps an ENG2 snapshot read-only and returns a borrowed-storage DiGraph
/// over the mapping (kept alive for the graph's lifetime and every copy).
/// Validates magic, version, section table bounds and alignment,
/// per-section checksums, the header graph checksum, and the CSR
/// structural invariants before returning; any mismatch is a clean
/// Corruption/NotSupported with no partial graph.
Result<DiGraph> MapBinary(const std::string& path);

/// Which snapshot family a file's magic declares.
enum class SnapshotFormat {
  kNotSnapshot,  ///< no recognizable magic (likely a text edge list)
  kV1,           ///< "ENG1"
  kV2,           ///< "ENG2"
};

/// Reads the first four bytes of `path` and classifies them. IoError when
/// the file cannot be opened; a short file is kNotSnapshot.
Result<SnapshotFormat> SniffSnapshot(const std::string& path);

/// Sniffs the magic and dispatches to LoadBinary (ENG1) or MapBinary
/// (ENG2). Corruption when the file carries neither magic.
Result<DiGraph> LoadSnapshot(const std::string& path);

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_IO_H_

// Graph persistence.
//
// Three formats:
//  * Text edge list — one "src dst" pair per line, '#' comments, the format
//    SNAP datasets ship in. Interoperable but slow.
//  * ENG1 binary CSR snapshot (legacy, read/write) — versioned header with
//    magic + whole-graph checksum, then the four CSR arrays verbatim.
//    Loads at memcpy speed into heap vectors.
//  * ENG2 zero-copy snapshot — a 64-byte-aligned, little-endian, sectioned
//    file (magic, section table, per-section FNV checksums) whose CSR
//    arrays are consumed *in place*: MapBinary mmaps the file read-only
//    (util/mmap_file.h) and returns a DiGraph whose spans point straight
//    into the page cache, so cold start pays validation, not
//    deserialization. The serving path and every bench prefer ENG2.

#ifndef ELITENET_GRAPH_IO_H_
#define ELITENET_GRAPH_IO_H_

#include <string>

#include "graph/digraph.h"
#include "util/ext_sort.h"
#include "util/status.h"

namespace elitenet {
namespace graph {

/// Writes "u v" lines. Deterministic (ascending (u, v)) so output diffs.
Status WriteEdgeListText(const DiGraph& g, const std::string& path);

/// Reads a text edge list. Node count is max id + 1 unless `num_nodes`
/// is positive, in which case ids must stay below it (trailing isolated
/// nodes are representable that way).
Result<DiGraph> ReadEdgeListText(const std::string& path,
                                 NodeId num_nodes = 0);

/// 64-bit FNV-1a chained over the four CSR arrays — the identity of a
/// graph's exact byte content. Stored in both snapshot headers and used
/// as the invalidation key for persisted warm indexes
/// (serve/warm_index_cache.h).
uint64_t GraphChecksum(const DiGraph& g);

/// ENG1 binary snapshot (legacy, kept read/write for compatibility).
/// Layout (little-endian):
///   magic "ENG1" | u32 version | u32 reserved | u64 num_nodes |
///   u64 num_edges | u64 checksum | out_offsets | out_targets |
///   in_offsets | in_targets
/// The checksum is GraphChecksum; Load verifies it and returns Corruption
/// on mismatch.
Status SaveBinary(const DiGraph& g, const std::string& path);
Result<DiGraph> LoadBinary(const std::string& path);

/// ENG2 sectioned snapshot. Layout (little-endian, every section start
/// 64-byte aligned):
///   header (64 B):  magic "ENG2" | u32 version | u64 num_nodes |
///                   u64 num_edges | u64 graph_checksum |
///                   u32 section_count | padding
///   section table:  section_count x 32 B entries
///                   { u32 id | u32 reserved | u64 offset | u64 length |
///                     u64 fnv1a_checksum }
///   payload:        out_offsets | out_targets | in_offsets | in_targets
/// Section ids are 0..3 in that order. Alignment means a page-aligned
/// mapping yields correctly aligned u64/u32 array pointers.
Status SaveBinaryV2(const DiGraph& g, const std::string& path);

/// Maps an ENG2 snapshot read-only and returns a borrowed-storage DiGraph
/// over the mapping (kept alive for the graph's lifetime and every copy).
/// Validates magic, version, section table bounds and alignment,
/// per-section checksums, the header graph checksum, and the CSR
/// structural invariants before returning; any mismatch is a clean
/// Corruption/NotSupported with no partial graph.
Result<DiGraph> MapBinary(const std::string& path);

/// Tuning for the out-of-core ENG2 writer.
struct StreamWriteOptions {
  /// Memory budget for the internal reverse-edge external sorter (the
  /// forward sorter is the caller's and carries its own budget). 0 means
  /// unbounded (sorts in RAM, no spill).
  uint64_t sort_budget_bytes = 256ull << 20;
  /// Spill directory for the reverse sorter. Empty derives the directory
  /// of the output path, so temp files land next to the snapshot.
  std::string temp_dir;
};

/// What a streamed write did — sizes for logging, spill counts for
/// out-of-core telemetry, and the checksum that keys warm indexes.
struct StreamWriteStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;          ///< unique edges written
  uint64_t input_records = 0;      ///< records the forward sorter held
  uint64_t dropped_duplicates = 0;
  uint64_t dropped_self_loops = 0;
  uint64_t graph_checksum = 0;     ///< matches GraphChecksum of a load
  size_t forward_spill_runs = 0;
  size_t reverse_spill_runs = 0;
};

/// Writes an ENG2 snapshot from a sorted edge stream without ever
/// materializing the graph: `forward` holds edges packed with
/// util::PackEdge (src-major order). Two merge passes build the out-CSR
/// sections (counting pass -> offsets, placement pass -> targets); the
/// counting pass simultaneously feeds a (dst, src)-keyed reverse sorter
/// whose two passes build the in-CSR sections the same way. Peak memory
/// is one (n+1)-entry offsets array plus the sorters' merge windows —
/// never O(m). Duplicate edges coalesce and self-loops drop, matching
/// GraphBuilder, so the resulting file is byte-identical to
/// SaveBinaryV2(builder.Build()) over the same edge multiset, at any
/// memory budget. Finishes `forward` if the caller has not.
Result<StreamWriteStats> WriteStreamedV2(util::ExtSorter* forward,
                                         NodeId num_nodes,
                                         const std::string& path,
                                         const StreamWriteOptions& options = {});

/// Convenience: streams an in-memory DiGraph through the external-sort
/// writer (both sorters under `sort_budget_bytes`). Exercises the
/// out-of-core path from the CLI; byte-identical to SaveBinaryV2.
Result<StreamWriteStats> SaveStreamedV2(const DiGraph& g,
                                        const std::string& path,
                                        const StreamWriteOptions& options = {});

/// Which snapshot family a file's magic declares.
enum class SnapshotFormat {
  kNotSnapshot,  ///< no recognizable magic (likely a text edge list)
  kV1,           ///< "ENG1"
  kV2,           ///< "ENG2"
};

/// Reads the first four bytes of `path` and classifies them. IoError when
/// the file cannot be opened; a short file is kNotSnapshot.
Result<SnapshotFormat> SniffSnapshot(const std::string& path);

/// Sniffs the magic and dispatches to LoadBinary (ENG1) or MapBinary
/// (ENG2). Corruption when the file carries neither magic.
Result<DiGraph> LoadSnapshot(const std::string& path);

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_IO_H_

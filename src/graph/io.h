// Graph persistence.
//
// Two formats:
//  * Text edge list — one "src dst" pair per line, '#' comments, the format
//    SNAP datasets ship in. Interoperable but slow.
//  * Binary CSR snapshot — versioned header with magic + checksum, then the
//    four CSR arrays verbatim. Loads at memcpy speed; the format every
//    bench uses for caching generated networks between runs.

#ifndef ELITENET_GRAPH_IO_H_
#define ELITENET_GRAPH_IO_H_

#include <string>

#include "graph/digraph.h"
#include "util/status.h"

namespace elitenet {
namespace graph {

/// Writes "u v" lines. Deterministic (ascending (u, v)) so output diffs.
Status WriteEdgeListText(const DiGraph& g, const std::string& path);

/// Reads a text edge list. Node count is max id + 1 unless `num_nodes`
/// is positive, in which case ids must stay below it (trailing isolated
/// nodes are representable that way).
Result<DiGraph> ReadEdgeListText(const std::string& path,
                                 NodeId num_nodes = 0);

/// Binary snapshot. Layout (little-endian):
///   magic "ENG1" | u32 version | u32 reserved | u64 num_nodes |
///   u64 num_edges | u64 checksum | out_offsets | out_targets |
///   in_offsets | in_targets
/// The checksum is a 64-bit FNV-1a over the array bytes; Load verifies it
/// and returns Corruption on mismatch.
Status SaveBinary(const DiGraph& g, const std::string& path);
Result<DiGraph> LoadBinary(const std::string& path);

}  // namespace graph
}  // namespace elitenet

#endif  // ELITENET_GRAPH_IO_H_

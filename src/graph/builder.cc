#include "graph/builder.h"

#include <algorithm>
#include <string>

#include "util/parallel.h"

namespace elitenet {
namespace graph {

GraphBuilder::GraphBuilder(NodeId num_nodes, Options options)
    : num_nodes_(num_nodes), options_(options) {}

Status GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange("edge (" + std::to_string(u) + ", " +
                              std::to_string(v) + ") exceeds node count " +
                              std::to_string(num_nodes_));
  }
  if (u == v) {
    if (options_.drop_self_loops) return Status::OK();
    return Status::InvalidArgument("self-loop at node " + std::to_string(u));
  }
  edges_.emplace_back(u, v);
  return Status::OK();
}

Status GraphBuilder::AddEdges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  for (const auto& [u, v] : edges) {
    EN_RETURN_IF_ERROR(AddEdge(u, v));
  }
  return Status::OK();
}

bool GraphBuilder::ContainsBuffered(NodeId u, NodeId v) const {
  return std::find(edges_.begin(), edges_.end(), std::make_pair(u, v)) !=
         edges_.end();
}

Result<DiGraph> GraphBuilder::Build() {
  const size_t n = num_nodes_;
  const size_t buffered = edges_.size();

  // Two-pass counting sort keyed by source: O(m) placement instead of the
  // old O(m log m) comparison sort of the whole edge buffer. Only the
  // per-row neighbor lists still get sorted (m log max_degree total).
  std::vector<EdgeIdx> out_offsets(n + 1, 0);
  for (const auto& [u, v] : edges_) ++out_offsets[u + 1];
  for (size_t i = 1; i <= n; ++i) out_offsets[i] += out_offsets[i - 1];
  std::vector<NodeId> out_targets(buffered);
  {
    std::vector<EdgeIdx> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const auto& [u, v] : edges_) out_targets[cursor[u]++] = v;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Sort and coalesce each row in place; rows are disjoint, so this runs
  // in parallel. The surviving (deduplicated) row length lands in
  // row_size[u]; the reduce sums dropped duplicates deterministically.
  std::vector<EdgeIdx> row_size(n, 0);
  const uint64_t duplicates = util::ParallelReduce(
      0, n, 0, uint64_t{0},
      [&](size_t lo, size_t hi) {
        uint64_t dropped = 0;
        for (size_t u = lo; u < hi; ++u) {
          const auto row_begin = out_targets.begin() + out_offsets[u];
          const auto row_end = out_targets.begin() + out_offsets[u + 1];
          std::sort(row_begin, row_end);
          const auto unique_end = std::unique(row_begin, row_end);
          row_size[u] = static_cast<EdgeIdx>(unique_end - row_begin);
          dropped += static_cast<uint64_t>(row_end - unique_end);
        }
        return dropped;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
  if (duplicates > 0 && !options_.allow_duplicates) {
    return Status::AlreadyExists("duplicate edges in strict ingest mode");
  }

  // Compact coalesced rows leftward (new offsets never exceed old ones,
  // so an ascending forward copy is safe) and finalize the offsets.
  if (duplicates > 0) {
    EdgeIdx write = 0;
    for (size_t u = 0; u < n; ++u) {
      const EdgeIdx read = out_offsets[u];
      const EdgeIdx count = row_size[u];
      if (write != read) {
        std::copy(out_targets.begin() + read,
                  out_targets.begin() + read + count,
                  out_targets.begin() + write);
      }
      out_offsets[u] = write;
      write += count;
    }
    out_offsets[n] = write;
    out_targets.resize(write);
  }
  const size_t m = out_targets.size();

  // Reverse CSR via counting placement; iterating rows in ascending u with
  // each row sorted yields globally (u, v)-sorted edges, so every
  // in-neighbor list comes out sorted.
  std::vector<EdgeIdx> in_offsets(n + 1, 0);
  for (size_t i = 0; i < m; ++i) ++in_offsets[out_targets[i] + 1];
  for (size_t i = 1; i <= n; ++i) in_offsets[i] += in_offsets[i - 1];
  std::vector<NodeId> in_targets(m);
  {
    std::vector<EdgeIdx> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (size_t u = 0; u < n; ++u) {
      for (EdgeIdx e = out_offsets[u]; e < out_offsets[u + 1]; ++e) {
        in_targets[cursor[out_targets[e]]++] = static_cast<NodeId>(u);
      }
    }
  }

  return DiGraph(std::move(out_offsets), std::move(out_targets),
                 std::move(in_offsets), std::move(in_targets));
}

}  // namespace graph
}  // namespace elitenet

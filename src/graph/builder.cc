#include "graph/builder.h"

#include <algorithm>
#include <string>

namespace elitenet {
namespace graph {

GraphBuilder::GraphBuilder(NodeId num_nodes, Options options)
    : num_nodes_(num_nodes), options_(options) {}

Status GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange("edge (" + std::to_string(u) + ", " +
                              std::to_string(v) + ") exceeds node count " +
                              std::to_string(num_nodes_));
  }
  if (u == v) {
    if (options_.drop_self_loops) return Status::OK();
    return Status::InvalidArgument("self-loop at node " + std::to_string(u));
  }
  edges_.emplace_back(u, v);
  return Status::OK();
}

Status GraphBuilder::AddEdges(
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  for (const auto& [u, v] : edges) {
    EN_RETURN_IF_ERROR(AddEdge(u, v));
  }
  return Status::OK();
}

bool GraphBuilder::ContainsBuffered(NodeId u, NodeId v) const {
  return std::find(edges_.begin(), edges_.end(), std::make_pair(u, v)) !=
         edges_.end();
}

Result<DiGraph> GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  const auto dup_begin = std::unique(edges_.begin(), edges_.end());
  const bool had_duplicates = dup_begin != edges_.end();
  edges_.erase(dup_begin, edges_.end());
  if (had_duplicates && !options_.allow_duplicates) {
    edges_.clear();
    return Status::AlreadyExists("duplicate edges in strict ingest mode");
  }

  const size_t m = edges_.size();
  const size_t n = num_nodes_;

  std::vector<EdgeIdx> out_offsets(n + 1, 0);
  std::vector<NodeId> out_targets(m);
  std::vector<EdgeIdx> in_offsets(n + 1, 0);
  std::vector<NodeId> in_targets(m);

  // Forward CSR: edges_ is already sorted by (u, v).
  for (const auto& [u, v] : edges_) {
    ++out_offsets[u + 1];
    ++in_offsets[v + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    out_offsets[i] += out_offsets[i - 1];
    in_offsets[i] += in_offsets[i - 1];
  }
  for (size_t i = 0; i < m; ++i) out_targets[i] = edges_[i].second;

  // Reverse CSR via counting placement; sources arrive in ascending order
  // per target because edges_ is sorted by (u, v), so each in-neighbor
  // list comes out sorted.
  std::vector<EdgeIdx> cursor(in_offsets.begin(), in_offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    in_targets[cursor[v]++] = u;
  }

  edges_.clear();
  edges_.shrink_to_fit();
  return DiGraph(std::move(out_offsets), std::move(out_targets),
                 std::move(in_offsets), std::move(in_targets));
}

}  // namespace graph
}  // namespace elitenet
